package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"asyncagree/internal/service"
)

func TestParseMix(t *testing.T) {
	specs, err := parseMix("core/full/adversary/split/12:1, benor/subsets/adversary/split/9:2")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("got %d specs", len(specs))
	}
	want := scenarioSpec{alg: "benor", adv: "subsets", sched: "adversary", input: "split", n: 9, t: 2}
	if specs[1] != want {
		t.Fatalf("spec[1] = %+v, want %+v", specs[1], want)
	}

	for _, bad := range []string{"", "core/full/adversary/split", "core/full/adversary/split/12", "core/full/adversary/split/x:1"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

// startService exposes an in-process agreement service over a real TCP
// listener for the generator to hit.
func startService(t *testing.T, cfg service.Config) (string, *service.Server) {
	t.Helper()
	srv, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(func() { hs.Close(); srv.Close() })
	return strings.TrimPrefix(hs.URL, "http://"), srv
}

// TestLoadAgainstService: the generator drives a live in-process service
// within budget and exits 0, reporting latency and zero errors.
func TestLoadAgainstService(t *testing.T) {
	addr, _ := startService(t, service.Config{Workers: 2})
	var out bytes.Buffer
	code := run([]string{
		"-addr", addr, "-rps", "200", "-duration", "500ms",
		"-concurrency", "8", "-seed", "3", "-max-error-rate", "0",
	}, &out)
	if code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), " ok, ") || !strings.Contains(out.String(), "latency") {
		t.Fatalf("report missing counts or latency:\n%s", out.String())
	}
	if strings.Contains(out.String(), "0 ok,") {
		t.Fatalf("no successful requests:\n%s", out.String())
	}
}

// TestLoadInstanceMode drives the journaled named-instance path.
func TestLoadInstanceMode(t *testing.T) {
	addr, _ := startService(t, service.Config{Workers: 1})
	var out bytes.Buffer
	code := run([]string{
		"-addr", addr, "-rps", "50", "-duration", "400ms",
		"-concurrency", "1", "-instance", "exp1", "-max-error-rate", "0",
	}, &out)
	if code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
}

// TestLoadErrorBudgetViolation: a server answering only 500s must blow a
// zero error budget and exit non-zero.
func TestLoadErrorBudgetViolation(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer hs.Close()
	var out bytes.Buffer
	code := run([]string{
		"-addr", strings.TrimPrefix(hs.URL, "http://"),
		"-rps", "100", "-duration", "200ms", "-max-error-rate", "0", "-quiet",
	}, &out)
	if code == 0 {
		t.Fatalf("exit 0 despite 100%% faults:\n%s", out.String())
	}
}

// TestLoadRetriesShedding: a server that sheds the first attempts then
// recovers is absorbed by retry — the request still counts as ok.
func TestLoadRetriesShedding(t *testing.T) {
	var hits int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		if hits%2 == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"result":{}}`))
	}))
	defer hs.Close()
	var out bytes.Buffer
	code := run([]string{
		"-addr", strings.TrimPrefix(hs.URL, "http://"),
		"-rps", "20", "-duration", "300ms", "-concurrency", "1",
		"-retry-base", "1ms", "-max-error-rate", "0",
	}, &out)
	if code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "retries") || strings.Contains(out.String(), " 0 retries") {
		t.Fatalf("expected retried requests in report:\n%s", out.String())
	}
}

func TestLoadBadFlags(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-mix", "garbage"}, &out); code != 2 {
		t.Fatalf("bad mix: exit %d, want 2", code)
	}
	if code := run([]string{"-rps", "0"}, &out); code != 2 {
		t.Fatalf("zero rps: exit %d, want 2", code)
	}
}
