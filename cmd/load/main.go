// Command load is an open-loop load generator for the agreed daemon: it
// fires requests at a fixed target rate (-rps) regardless of how fast the
// server answers — the arrival process never slows down to match a
// struggling server, which is exactly what makes overload visible — while a
// concurrency bound (-concurrency) caps in-flight work; a tick that finds
// no free slot is counted as skipped, not silently dropped.
//
// The request mix is deterministic: scenarios come from -mix (comma-
// separated alg/adv/sched/input/n:t specs) picked by a seeded RNG, and each
// request's trial seed is its global index, so two runs with the same flags
// ask the server for byte-identical work — the property the crash-recovery
// smoke test leans on when it compares a chaos run against a clean one.
//
// 503s (overload shedding, quarantine) are retried with the deterministic
// backoff of internal/retry, honoring cancellation mid-sleep; other errors
// are terminal for that request. Latency lands in internal/stream summaries
// (mean/min/max) and a deterministic reservoir (p50/p90/p99). The exit
// status enforces budgets: non-zero when the error rate exceeds
// -max-error-rate or the p99 exceeds -max-p99.
//
// With -instance NAME the generator instead creates (idempotently) the
// named instance and drives POST /instances/NAME/run, exercising the
// journaled path.
//
// Usage:
//
//	load -addr localhost:8080 -rps 50 -duration 10s
//	load -addr localhost:8080 -mix core/full/adversary/split/12:1,benor/subsets/adversary/split/9:2
//	load -addr localhost:8080 -instance exp1 -rps 20 -duration 5s
//	load -addr localhost:8080 -rps 200 -max-error-rate 0.01 -max-p99 500ms
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"asyncagree/internal/retry"
	"asyncagree/internal/rng"
	"asyncagree/internal/stream"
)

// scenarioSpec is one parsed -mix entry.
type scenarioSpec struct {
	alg, adv, sched, input string
	n, t                   int
}

// parseMix parses "alg/adv/sched/input/n:t" specs.
func parseMix(s string) ([]scenarioSpec, error) {
	var specs []scenarioSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, "/")
		if len(fields) != 5 {
			return nil, fmt.Errorf("spec %q: want alg/adv/sched/input/n:t", part)
		}
		nt := strings.SplitN(fields[4], ":", 2)
		if len(nt) != 2 {
			return nil, fmt.Errorf("spec %q: size %q: want n:t", part, fields[4])
		}
		n, err := strconv.Atoi(nt[0])
		if err != nil {
			return nil, fmt.Errorf("spec %q: bad n: %v", part, err)
		}
		t, err := strconv.Atoi(nt[1])
		if err != nil {
			return nil, fmt.Errorf("spec %q: bad t: %v", part, err)
		}
		specs = append(specs, scenarioSpec{
			alg: fields[0], adv: fields[1], sched: fields[2], input: fields[3], n: n, t: t,
		})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("empty mix")
	}
	return specs, nil
}

// runBody renders the POST /run body for request index i of the mix.
func (sp scenarioSpec) runBody(seed uint64) []byte {
	b, _ := json.Marshal(map[string]any{
		"algorithm": sp.alg, "adversary": sp.adv, "scheduler": sp.sched,
		"input": sp.input, "n": sp.n, "t": sp.t, "seed": seed,
	})
	return b
}

// outcome classifies one finished request for the tally.
type outcome struct {
	status   int
	err      error
	latency  time.Duration
	retries  int
	canceled bool // cut short by the generator's own shutdown
}

// tally aggregates outcomes under a lock: counts per class, latency
// summary, and a deterministic reservoir for quantiles.
type tally struct {
	mu        sync.Mutex
	total     int
	ok        int
	shed      int // terminal 503s (retries exhausted)
	faults    int // 5xx/4xx other than shed
	netErrors int
	canceled  int // cut short by our own shutdown; never charged
	retries   int
	latency   stream.Summary
	res       *stream.Reservoir
}

func (ta *tally) add(o outcome) {
	ta.mu.Lock()
	defer ta.mu.Unlock()
	ta.total++
	ta.retries += o.retries
	switch {
	case o.canceled:
		ta.canceled++
	case o.err != nil:
		ta.netErrors++
	case o.status == http.StatusOK:
		ta.ok++
		ta.latency.Add(o.latency.Seconds())
		ta.res.Add(o.latency.Seconds())
	case o.status == http.StatusServiceUnavailable:
		ta.shed++
	default:
		ta.faults++
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

// run is the testable generator body; the report goes to stdout and the
// return value is the process exit code (non-zero on budget violations).
func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("load", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:8080", "agreed server address (host:port)")
		rps         = fs.Float64("rps", 20, "target request rate (open loop)")
		duration    = fs.Duration("duration", 5*time.Second, "load duration")
		concurrency = fs.Int("concurrency", 32, "max in-flight requests; saturated ticks are counted, not queued")
		mixFlag     = fs.String("mix", "core/full/adversary/split/12:1", "comma-separated alg/adv/sched/input/n:t scenario mix")
		seed        = fs.Uint64("seed", 1, "mix-selection seed; request i uses trial seed i")
		instance    = fs.String("instance", "", "drive POST /instances/NAME/run instead of /run (first mix entry is the instance scenario)")
		attempts    = fs.Int("retry-attempts", 4, "attempts per request on 503 (shed/quarantine)")
		retryBase   = fs.Duration("retry-base", 50*time.Millisecond, "base backoff between retries")
		maxErrRate  = fs.Float64("max-error-rate", 1.0, "exit non-zero when (faults+net errors)/total exceeds this")
		maxP99      = fs.Duration("max-p99", 0, "exit non-zero when ok-request p99 exceeds this (0: no budget)")
		quiet       = fs.Bool("quiet", false, "suppress the per-run report (exit status only)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	specs, err := parseMix(*mixFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "load: -mix: %v\n", err)
		return 2
	}
	if *rps <= 0 {
		fmt.Fprintln(os.Stderr, "load: -rps must be positive")
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, *duration)
	defer cancel()

	base := "http://" + *addr
	client := &http.Client{}
	pol := retry.Policy{Attempts: *attempts, Base: *retryBase, Max: time.Second}

	if *instance != "" {
		if code := createInstance(ctx, client, base, *instance, specs[0]); code != 0 {
			return code
		}
	}

	ta := &tally{res: stream.NewReservoir(4096)}
	pick := rng.New(*seed)
	sem := make(chan struct{}, *concurrency)
	var wg sync.WaitGroup
	interval := time.Duration(float64(time.Second) / *rps)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	sent, skipped := 0, 0
loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case <-ticker.C:
		}
		// Open loop: the tick fires on schedule no matter what; if every
		// slot is busy the tick is recorded as skipped rather than queued
		// (queuing would close the loop and hide the overload).
		select {
		case sem <- struct{}{}:
		default:
			skipped++
			continue
		}
		idx := sent
		sent++
		sp := specs[pick.Intn(len(specs))]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			ta.add(fire(ctx, client, pol, base, *instance, sp, uint64(idx)))
		}()
	}
	wg.Wait()

	return report(stdout, ta, sent, skipped, *maxErrRate, *maxP99, *quiet)
}

// createInstance idempotently creates the named instance before the run.
func createInstance(ctx context.Context, client *http.Client, base, name string, sp scenarioSpec) int {
	body, _ := json.Marshal(map[string]any{"scenario": map[string]any{
		"algorithm": sp.alg, "adversary": sp.adv, "scheduler": sp.sched,
		"input": sp.input, "n": sp.n, "t": sp.t,
	}})
	req, err := http.NewRequestWithContext(ctx, "PUT", base+"/instances/"+name, bytes.NewReader(body))
	if err != nil {
		fmt.Fprintf(os.Stderr, "load: %v\n", err)
		return 1
	}
	resp, err := client.Do(req)
	if err != nil {
		fmt.Fprintf(os.Stderr, "load: create instance: %v\n", err)
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		fmt.Fprintf(os.Stderr, "load: create instance: %d: %s\n", resp.StatusCode, b)
		return 1
	}
	return 0
}

// fire sends one request, retrying 503s under the policy, and classifies
// the outcome. Latency covers the successful attempt only.
func fire(ctx context.Context, client *http.Client, pol retry.Policy, base, instance string, sp scenarioSpec, seed uint64) outcome {
	var (
		o        outcome
		attempts int
	)
	err := pol.DoCtx(ctx, func() error {
		attempts++
		var req *http.Request
		var rerr error
		if instance != "" {
			req, rerr = http.NewRequestWithContext(ctx, "POST", base+"/instances/"+instance+"/run", nil)
		} else {
			req, rerr = http.NewRequestWithContext(ctx, "POST", base+"/run", bytes.NewReader(sp.runBody(seed)))
		}
		if rerr != nil {
			o.err = rerr
			return nil // not retryable
		}
		start := time.Now()
		resp, derr := client.Do(req)
		if derr != nil {
			// A request cut short by the generator's own shutdown (duration
			// elapsed, SIGTERM) is the harness's doing, not the server's:
			// classify it separately so it never charges the error budget.
			if ctx.Err() != nil {
				o.canceled = true
				o.err = nil
				return nil
			}
			o.err = derr
			return nil // connection errors are terminal for this request
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		o.status = resp.StatusCode
		o.latency = time.Since(start)
		o.err = nil
		if resp.StatusCode == http.StatusServiceUnavailable {
			return fmt.Errorf("503") // retry shed/quarantined requests
		}
		// 409 = lost an instance-seq race to a concurrent generator; retry.
		if instance != "" && resp.StatusCode == http.StatusConflict {
			return fmt.Errorf("409")
		}
		return nil
	})
	if attempts == 0 {
		// The generator's own shutdown beat the first attempt out of DoCtx:
		// no request ever reached the server, so there is nothing to judge.
		o.canceled = true
		return o
	}
	o.retries = attempts - 1
	_ = err // a fully-shed request keeps its last 503 classification
	return o
}

// report prints the run summary and maps budget violations to the exit
// status.
func report(stdout io.Writer, ta *tally, sent, skipped int, maxErrRate float64, maxP99 time.Duration, quiet bool) int {
	ta.mu.Lock()
	defer ta.mu.Unlock()

	// Error rate is over requests the server was given a fair chance to
	// answer: generator-canceled tails are excluded.
	errRate := 0.0
	if judged := ta.total - ta.canceled; judged > 0 {
		errRate = float64(ta.faults+ta.netErrors) / float64(judged)
	}
	var p50, p90, p99 time.Duration
	if ta.ok > 0 {
		q := func(p float64) time.Duration {
			return time.Duration(ta.res.Quantile(p) * float64(time.Second))
		}
		p50, p90, p99 = q(0.50), q(0.90), q(0.99)
	}

	if !quiet {
		fmt.Fprintf(stdout, "load: %d sent (%d ticks skipped at concurrency cap), %d ok, %d shed, %d faulted, %d net errors, %d canceled, %d retries\n",
			sent, skipped, ta.ok, ta.shed, ta.faults, ta.netErrors, ta.canceled, ta.retries)
		if ta.ok > 0 {
			fmt.Fprintf(stdout, "load: latency mean %.1fms p50 %.1fms p90 %.1fms p99 %.1fms max %.1fms\n",
				ta.latency.Mean()*1000, p50.Seconds()*1000, p90.Seconds()*1000,
				p99.Seconds()*1000, ta.latency.Max()*1000)
		}
		fmt.Fprintf(stdout, "load: error rate %.4f\n", errRate)
	}

	code := 0
	if errRate > maxErrRate {
		fmt.Fprintf(os.Stderr, "load: error rate %.4f exceeds budget %.4f\n", errRate, maxErrRate)
		code = 1
	}
	if maxP99 > 0 && p99 > maxP99 {
		fmt.Fprintf(os.Stderr, "load: p99 %v exceeds budget %v\n", p99, maxP99)
		code = 1
	}
	return code
}
