// Command sweep runs the full algorithm × adversary × scheduler × size ×
// input × seed scenario matrix through the shared registry and prints one
// aggregated table row per cell. Incompatible pairings (e.g. reset
// adversaries against non-reset-tolerant algorithms, lossy delivery
// schedulers against the committee algorithm) and invalid sizes (e.g. the
// core algorithm at t >= n/6) are skipped automatically, so the default
// invocation runs the complete compatible cross-product in one command.
//
// All trials are independently seeded and fanned across a deterministic
// worker pool: the table is byte-identical run-to-run and identical to a
// serial sweep (-serial). Timing goes to stderr so stdout stays
// deterministic.
//
// Usage:
//
//	sweep                                   # full compatible cross-product, default grid
//	sweep -algs core,benor -advs splitvote  # restrict axes
//	sweep -scheds adversary                 # the pre-scheduler trials (table adds a scheduler column)
//	sweep -sizes 12:1,24:3 -trials 5        # custom shapes, seeds 1..5
//	sweep -list                             # print the registered inventory
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"asyncagree/internal/registry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		algs       = fs.String("algs", "", "comma-separated algorithms (empty = all registered)")
		advs       = fs.String("advs", "", "comma-separated adversaries (empty = all registered)")
		scheds     = fs.String("scheds", "", "comma-separated delivery schedulers (empty = all registered)")
		sizes      = fs.String("sizes", "", "comma-separated n:t shapes, e.g. 12:1,24:3 (empty = default grid)")
		inputs     = fs.String("inputs", "", "comma-separated input patterns (empty = default grid)")
		trials     = fs.Int("trials", 0, "trials per cell, seeded 1..trials (0 = default grid)")
		maxWindows = fs.Int("max-windows", 0, "per-trial window budget (0 = default)")
		serial     = fs.Bool("serial", false, "run trials on a serial loop instead of the worker pool")
		verbose    = fs.Bool("v", false, "also print skipped sizes and incompatible-pair counts")
		list       = fs.Bool("list", false, "print the registered algorithms, adversaries, schedulers, and input patterns")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		registry.WriteInventory(out)
		return nil
	}

	m := registry.Matrix{
		Algorithms:  splitList(*algs),
		Adversaries: splitList(*advs),
		Schedulers:  splitList(*scheds),
		Inputs:      splitList(*inputs),
		MaxWindows:  *maxWindows,
	}
	var err error
	if m.Sizes, err = parseSizes(*sizes); err != nil {
		return err
	}
	if *trials < 0 {
		return fmt.Errorf("trials must be >= 0, got %d", *trials)
	}
	for seed := uint64(1); seed <= uint64(*trials); seed++ {
		m.Seeds = append(m.Seeds, seed)
	}

	start := time.Now()
	var sweep *registry.Sweep
	if *serial {
		sweep, err = m.RunSerial()
	} else {
		sweep, err = m.Run()
	}
	if err != nil {
		return err
	}

	fmt.Fprint(out, sweep.Table().String())
	fmt.Fprintf(out, "\ncells %d   trials %d   incompatible-pairs %d   skipped-sizes %d\n",
		len(sweep.Cells), sweep.TrialCount, sweep.Incompatible, len(sweep.Skipped))
	if *verbose {
		for _, s := range sweep.Skipped {
			fmt.Fprintf(out, "  skipped: %s\n", s)
		}
	}
	fmt.Fprintf(os.Stderr, "sweep: %d trials in %.2fs\n", sweep.TrialCount, time.Since(start).Seconds())

	if v := sweep.SafetyViolations(); v > 0 {
		return fmt.Errorf("%d agreement/validity violations in safety-certain algorithms (this is a bug, not an expected outcome)", v)
	}
	return nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseSizes(s string) ([]registry.Size, error) {
	var sizes []registry.Size
	for _, part := range splitList(s) {
		nt := strings.SplitN(part, ":", 2)
		if len(nt) != 2 {
			return nil, fmt.Errorf("bad size %q (want n:t, e.g. 24:3)", part)
		}
		n, err := strconv.Atoi(nt[0])
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %v", part, err)
		}
		t, err := strconv.Atoi(nt[1])
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %v", part, err)
		}
		sizes = append(sizes, registry.Size{N: n, T: t})
	}
	return sizes, nil
}
