// Command sweep runs the full algorithm × adversary × scheduler × size ×
// input × seed scenario matrix through the shared registry and prints one
// aggregated table row per cell. Incompatible pairings (e.g. reset
// adversaries against non-reset-tolerant algorithms, lossy delivery
// schedulers against the committee algorithm) and invalid sizes (e.g. the
// core algorithm at t >= n/6) are skipped automatically, so the default
// invocation runs the complete compatible cross-product in one command.
//
// All trials are independently seeded and fanned across a deterministic
// worker pool: the table is byte-identical run-to-run and identical to a
// serial sweep (-serial). Timing goes to stderr so stdout stays
// deterministic.
//
// Results stream: per-cell aggregates are reduced online and -out streams
// one record per trial (JSONL, or CSV when the path ends in .csv), so
// memory stays O(cells) however many seeds run. With -out a checkpoint file
// (default <out>.ckpt, override with -checkpoint, "off" disables) records
// every completed trial; an interrupted sweep — Ctrl-C flushes cleanly and
// prints this hint — rerun with -resume skips the completed prefix and
// produces output byte-identical to an uninterrupted run.
//
// Execution is hardened (DESIGN.md, "Failure model of the harness"): a
// panicking trial becomes a fault record instead of a crash, a cell is
// quarantined after repeated consecutive faults, -deadline converts runaway
// trials into recorded non-termination outcomes, and sink/checkpoint writes
// are retried with deterministic backoff (-retry), degrading to a reported
// drop rather than an abort. The -inject-* flags drive the deterministic
// fault-injection harness (internal/faultinject) that chaos-tests all of
// this. A sweep that completes but saw faults, quarantines, or dropped
// sinks prints its table and exits non-zero.
//
// Usage:
//
//	sweep                                   # full compatible cross-product, default grid
//	sweep -algs core,benor -advs splitvote  # restrict axes
//	sweep -scheds adversary                 # the pre-scheduler trials (table adds a scheduler column)
//	sweep -sizes 12:1,24:3 -trials 5        # custom shapes, seeds 1..5
//	sweep -out results.jsonl -progress      # stream per-trial records, report progress
//	sweep -out results.jsonl -resume        # continue an interrupted sweep
//	sweep -deadline 30s                     # watchdog: record trials exceeding 30s as non-terminating
//	sweep -inject-panics rand:3@7           # chaos: panic 3 seeded-random trials
//	sweep -list                             # print the registered inventory
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"asyncagree/internal/ckptio"
	"asyncagree/internal/faultinject"
	"asyncagree/internal/registry"
	"asyncagree/internal/retry"
)

func main() {
	stop := installInterrupt()
	if err := run(os.Args[1:], os.Stdout, stop); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// installInterrupt converts the first SIGINT or SIGTERM into a clean-stop
// request (the sweep flushes sinks and the checkpoint, then exits with a
// resume hint); a second signal falls back to the default abrupt exit.
// SIGTERM gets the same treatment as Ctrl-C because container runtimes and
// batch schedulers terminate with it — losing the resume invocation to an
// orchestrated shutdown would defeat the checkpoint contract.
func installInterrupt() func() bool {
	var stopped atomic.Bool
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ch
		stopped.Store(true)
		signal.Stop(ch)
	}()
	return stopped.Load
}

func run(args []string, out io.Writer, interrupted func() bool) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		algs       = fs.String("algs", "", "comma-separated algorithms (empty = all registered)")
		advs       = fs.String("advs", "", "comma-separated adversaries (empty = all registered)")
		scheds     = fs.String("scheds", "", "comma-separated delivery schedulers (empty = all registered)")
		sizes      = fs.String("sizes", "", "comma-separated n:t shapes, e.g. 12:1,24:3 (empty = default grid)")
		inputs     = fs.String("inputs", "", "comma-separated input patterns (empty = default grid)")
		trials     = fs.Int("trials", 0, "trials per cell, seeded 1..trials (0 = default grid)")
		maxWindows = fs.Int("max-windows", 0, "per-trial window budget (0 = default)")
		shardW     = fs.Int("shard-workers", 1, "intra-trial parallelism: goroutines sharding each window's delivery (1 = serial; records are identical at any setting)")
		columnar   = fs.Bool("columnar", true, "columnar vote-tally fast path for algorithms that support it (records are identical either way)")
		serial     = fs.Bool("serial", false, "run trials on a serial loop instead of the worker pool")
		verbose    = fs.Bool("v", false, "also print skipped sizes and incompatible-pair counts")
		list       = fs.Bool("list", false, "print the registered algorithms, adversaries, schedulers, and input patterns")
		outPath    = fs.String("out", "", "stream per-trial records here (.csv = CSV, anything else = JSONL)")
		ckptPath   = fs.String("checkpoint", "", "checkpoint file for -resume (default <out>.ckpt when -out is set; \"off\" disables)")
		resume     = fs.Bool("resume", false, "skip trials already recorded in the checkpoint and continue the sweep")
		progress   = fs.Bool("progress", false, "report trial progress to stderr")
		stopAfter  = fs.Int("interrupt-after", 0, "stop cleanly after N completed trials, as if interrupted (testing hook for -resume)")

		deadline  = fs.Duration("deadline", 0, "per-trial wall-clock budget; exceeding it records the trial as non-terminating (0 = off)")
		quarAfter = fs.Int("quarantine-after", 0, "quarantine a cell after N consecutive faulted trials (0 = default 3, negative = never)")
		retryN    = fs.Int("retry", 3, "attempts per sink/checkpoint write before the sink is dropped")
		retryBase = fs.Duration("retry-backoff", 5*time.Millisecond, "base of the deterministic exponential retry backoff")

		injPanics  = fs.String("inject-panics", "", "fault injection: trials to panic (\"3,7,9-12\" or \"rand:K@seed\")")
		injStalls  = fs.String("inject-stalls", "", "fault injection: trials to stall past the watchdog (same syntax)")
		injStallAt = fs.Int("inject-stall-window", 0, "window at which injected stalls fire (0 = default)")
		injOut     = fs.String("inject-out-failures", "", "fault injection: -out write-failure schedule (\"N\", \"NxK\", \"N+\", comma-composed)")
		injCkpt    = fs.String("inject-ckpt-failures", "", "fault injection: checkpoint write-failure schedule (same syntax)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		registry.WriteInventory(out)
		return nil
	}

	if *shardW < 1 {
		return fmt.Errorf("shard-workers must be >= 1, got %d", *shardW)
	}
	m := registry.Matrix{
		Algorithms:   splitList(*algs),
		Adversaries:  splitList(*advs),
		Schedulers:   splitList(*scheds),
		Inputs:       splitList(*inputs),
		MaxWindows:   *maxWindows,
		ShardWorkers: *shardW,

		DisableColumnar: !*columnar,
	}
	var err error
	if m.Sizes, err = parseSizes(*sizes); err != nil {
		return err
	}
	if *trials < 0 {
		return fmt.Errorf("trials must be >= 0, got %d", *trials)
	}
	if *maxWindows < 0 {
		return fmt.Errorf("max-windows must be >= 0, got %d", *maxWindows)
	}
	if *stopAfter < 0 {
		return fmt.Errorf("interrupt-after must be >= 0, got %d", *stopAfter)
	}
	if *deadline < 0 {
		return fmt.Errorf("deadline must be >= 0, got %s", *deadline)
	}
	if *retryN < 1 {
		return fmt.Errorf("retry must be >= 1 attempt, got %d", *retryN)
	}
	if *retryBase < 0 {
		return fmt.Errorf("retry-backoff must be >= 0, got %s", *retryBase)
	}
	if *injStallAt < 0 {
		return fmt.Errorf("inject-stall-window must be >= 0, got %d", *injStallAt)
	}
	inject := &faultinject.Plan{StallWindow: *injStallAt}
	if inject.Panic, err = faultinject.ParseTrialSet(*injPanics); err != nil {
		return err
	}
	if inject.Stall, err = faultinject.ParseTrialSet(*injStalls); err != nil {
		return err
	}
	outFailures, err := faultinject.ParseWriteFailures(*injOut)
	if err != nil {
		return err
	}
	ckptFailures, err := faultinject.ParseWriteFailures(*injCkpt)
	if err != nil {
		return err
	}
	retryPolicy := retry.Policy{Attempts: *retryN, Base: *retryBase, Max: 16 * *retryBase}
	for seed := uint64(1); seed <= uint64(*trials); seed++ {
		m.Seeds = append(m.Seeds, seed)
	}

	ckpt := *ckptPath
	switch {
	case ckpt == "off":
		ckpt = ""
	case ckpt == "" && *outPath != "":
		ckpt = *outPath + ".ckpt"
	}
	if *resume && ckpt == "" {
		return errors.New("-resume needs a checkpoint: set -out or -checkpoint")
	}

	grid := m.GridSignature()
	var prefix []registry.TrialRecord
	if *resume {
		var salvage *registry.SalvageReport
		if prefix, salvage, err = registry.LoadCheckpointSalvage(ckpt, grid); err != nil {
			return err
		}
		if !salvage.Empty() {
			fmt.Fprintf(os.Stderr, "sweep: %s: %s\n", ckpt, salvage)
		}
		if *progress && len(prefix) > 0 {
			fmt.Fprintf(os.Stderr, "sweep: resuming past %d checkpointed trials\n", len(prefix))
		}
	}

	opts := registry.RunOptions{
		Resume:          prefix,
		Serial:          *serial,
		TrialDeadline:   *deadline,
		QuarantineAfter: *quarAfter,
	}
	if !inject.Empty() {
		opts.Inject = inject
	}
	var closers []io.Closer
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()
	if *outPath != "" {
		sink, f, err := openOutSink(*outPath, prefix, retryPolicy, outFailures)
		if err != nil {
			return err
		}
		closers = append(closers, f)
		opts.Sinks = append(opts.Sinks, registry.NamedSink{Name: *outPath, ResultSink: sink})
	}
	if ckpt != "" {
		sink, f, err := openCheckpointSink(ckpt, grid, prefix, retryPolicy, ckptFailures)
		if err != nil {
			return err
		}
		closers = append(closers, f)
		opts.Sinks = append(opts.Sinks, registry.NamedSink{Name: ckpt, ResultSink: sink})
	}

	var emitted atomic.Int64
	stopRequested := func() bool {
		if interrupted != nil && interrupted() {
			return true
		}
		return *stopAfter > 0 && emitted.Load() >= int64(*stopAfter)
	}
	opts.Stop = stopRequested
	lastReport := time.Now()
	opts.Progress = func(done, total int) {
		emitted.Store(int64(done))
		if *progress && (done == total || time.Since(lastReport) >= 500*time.Millisecond) {
			lastReport = time.Now()
			fmt.Fprintf(os.Stderr, "sweep: %d/%d trials (%.1f%%)\n",
				done, total, 100*float64(done)/float64(total))
		}
	}

	start := time.Now()
	sweep, err := m.RunWith(opts)
	if errors.Is(err, registry.ErrInterrupted) {
		// Echo the invocation with -resume added and -interrupt-after
		// stripped — re-running the hint verbatim must make progress, not
		// re-interrupt itself after the replayed prefix.
		var resumeArgs []string
		for i := 0; i < len(args); i++ {
			if args[i] == "-interrupt-after" || args[i] == "--interrupt-after" {
				i++ // skip the value too
				continue
			}
			if strings.HasPrefix(args[i], "-interrupt-after=") || strings.HasPrefix(args[i], "--interrupt-after=") {
				continue
			}
			resumeArgs = append(resumeArgs, args[i])
		}
		if !*resume {
			resumeArgs = append(resumeArgs, "-resume")
		}
		fmt.Fprintf(os.Stderr, "sweep: interrupted after %d trials; partial results are checkpointed — resume with: sweep %s\n",
			emitted.Load(), strings.Join(resumeArgs, " "))
		return err
	}
	if err != nil {
		return err
	}

	fmt.Fprint(out, sweep.Table().String())
	fmt.Fprintf(out, "\ncells %d   trials %d   incompatible-pairs %d   skipped-sizes %d\n",
		len(sweep.Cells), sweep.TrialCount, sweep.Incompatible, len(sweep.Skipped))
	if *verbose {
		for _, s := range sweep.Skipped {
			fmt.Fprintf(out, "  skipped: %s\n", s)
		}
	}
	// Degradation report: only unhealthy sweeps print it (clean output stays
	// byte-identical to the pre-hardening format) and they exit non-zero
	// below, after the table and aggregates have been delivered in full.
	if !sweep.Healthy() {
		fmt.Fprintf(out, "faulted-trials %d   quarantined-cells %d   dropped-sinks %d\n",
			sweep.Faulted, len(sweep.Quarantined), len(sweep.SinkFailures))
		for _, q := range sweep.Quarantined {
			fmt.Fprintf(out, "  quarantined: %s\n", q)
		}
		for _, s := range sweep.SinkFailures {
			fmt.Fprintf(out, "  sink dropped: %s\n", s)
		}
	}
	fmt.Fprintf(os.Stderr, "sweep: %d trials in %.2fs\n", sweep.TrialCount, time.Since(start).Seconds())

	if v := sweep.SafetyViolations(); v > 0 {
		return fmt.Errorf("%d agreement/validity violations in safety-certain algorithms (this is a bug, not an expected outcome)", v)
	}
	if !sweep.Healthy() {
		return fmt.Errorf("sweep completed with %d faulted trials, %d quarantined cells, %d dropped sinks",
			sweep.Faulted, len(sweep.Quarantined), len(sweep.SinkFailures))
	}
	return nil
}

// openOutSink prepares the per-trial record export: the file is rewritten
// from the resumed prefix (healing any torn tail of the interrupted run)
// and the returned sink appends the remaining live trials, so the finished
// file is byte-identical to an uninterrupted run's. Streaming appends run
// through the retry/fault-injection stack; the atomic prefix rewrite does
// not (it already fails safe: temp file + rename).
func openOutSink(path string, prefix []registry.TrialRecord, pol retry.Policy, failures *faultinject.WriteFailures) (registry.ResultSink, *os.File, error) {
	csv := strings.EqualFold(filepath.Ext(path), ".csv")
	f, err := ckptio.RewriteThenAppend(path, func(w io.Writer) error {
		var sink registry.ResultSink
		if csv {
			sink = registry.NewCSVSink(w)
		} else {
			sink = registry.NewJSONLSink(w)
		}
		for _, rec := range prefix {
			if err := sink.Consume(rec); err != nil {
				return err
			}
		}
		return sink.Flush()
	})
	if err != nil {
		return nil, nil, err
	}
	w := ckptio.HardenWriter(f, pol, failures)
	if csv {
		s := registry.NewCSVSink(w)
		if len(prefix) > 0 {
			s.SkipHeader()
		}
		return s, f, nil
	}
	return registry.NewJSONLSink(w), f, nil
}

// openCheckpointSink prepares the checkpoint: header plus the verified
// resumed prefix are rewritten, and the returned sink appends every further
// completed trial as it is emitted — through the same retry/fault-injection
// stack as the record export.
func openCheckpointSink(path, grid string, prefix []registry.TrialRecord, pol retry.Policy, failures *faultinject.WriteFailures) (registry.ResultSink, *os.File, error) {
	f, err := ckptio.RewriteThenAppend(path, func(w io.Writer) error {
		if err := registry.WriteCheckpointHeader(w, grid); err != nil {
			return err
		}
		sink := registry.NewJSONLSink(w)
		for _, rec := range prefix {
			if err := sink.Consume(rec); err != nil {
				return err
			}
		}
		return sink.Flush()
	})
	if err != nil {
		return nil, nil, err
	}
	return registry.NewJSONLSink(ckptio.HardenWriter(f, pol, failures)), f, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseSizes(s string) ([]registry.Size, error) {
	var sizes []registry.Size
	for _, part := range splitList(s) {
		nt := strings.SplitN(part, ":", 2)
		if len(nt) != 2 {
			return nil, fmt.Errorf("bad size %q (want n:t, e.g. 24:3)", part)
		}
		n, err := strconv.Atoi(nt[0])
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %v", part, err)
		}
		t, err := strconv.Atoi(nt[1])
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %v", part, err)
		}
		sizes = append(sizes, registry.Size{N: n, T: t})
	}
	return sizes, nil
}
