package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"asyncagree/internal/registry"
)

// TestSweepRejectsBadHardeningFlags: the robustness flags validate their
// inputs with clear errors instead of silently misbehaving.
func TestSweepRejectsBadHardeningFlags(t *testing.T) {
	cases := [][]string{
		{"-interrupt-after", "-1"},
		{"-max-windows", "-5"},
		{"-deadline", "-1s"},
		{"-retry", "0"},
		{"-retry", "-2"},
		{"-retry-backoff", "-1ms"},
		{"-inject-stall-window", "-1"},
		{"-inject-panics", "nope"},
		{"-inject-panics", "5-2"},
		{"-inject-stalls", "rand:0@1"},
		{"-inject-out-failures", "0+"},
		{"-inject-ckpt-failures", "3x0"},
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out, nil); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

// loadRecords parses a JSONL export, truncating fault descriptions to their
// first line (panic stacks carry frame addresses that differ run to run;
// the byte-identity guarantee covers clean records in full).
func loadRecords(t *testing.T, path string) []registry.TrialRecord {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []registry.TrialRecord
	for i, line := range strings.Split(strings.TrimSuffix(string(data), "\n"), "\n") {
		var rec registry.TrialRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("%s line %d: %v", path, i+1, err)
		}
		if j := strings.IndexByte(rec.Fault, '\n'); j >= 0 {
			rec.Fault = rec.Fault[:j]
		}
		out = append(out, rec)
	}
	return out
}

// TestSweepChaosSurvivesAndReportsFaults is the end-to-end panic/stall
// chaos run: the sweep completes, prints its table plus a degradation
// summary, exits non-zero, and every non-faulted trial's record is
// byte-identical to the clean run's.
func TestSweepChaosSurvivesAndReportsFaults(t *testing.T) {
	dir := t.TempDir()
	cleanOut := filepath.Join(dir, "clean.jsonl")
	chaosOut := filepath.Join(dir, "chaos.jsonl")

	var cleanTable strings.Builder
	if err := run(smokeArgs("-out", cleanOut, "-checkpoint", "off"), &cleanTable, nil); err != nil {
		t.Fatal(err)
	}
	clean := loadRecords(t, cleanOut)
	// Stall a trial that demonstrably runs past window 1 (and isn't already
	// panicking), so the injected stall interrupts real work.
	stallAt := -1
	for i, rec := range clean {
		if rec.Windows >= 2 && i != 2 && i != 9 {
			stallAt = i
			break
		}
	}
	if stallAt < 0 {
		t.Skip("no trial runs long enough to stall")
	}

	var chaosTable strings.Builder
	err := run(smokeArgs("-out", chaosOut, "-checkpoint", "off",
		"-inject-panics", "2,9",
		"-inject-stalls", fmt.Sprint(stallAt), "-inject-stall-window", "1"), &chaosTable, nil)
	if err == nil || !strings.Contains(err.Error(), "3 faulted trials") {
		t.Fatalf("chaos run: err = %v", err)
	}
	if !strings.Contains(chaosTable.String(), "faulted-trials 3") {
		t.Fatalf("missing degradation summary:\n%s", chaosTable.String())
	}
	// The aggregate table rows and the standard summary line still lead the
	// output, before the degradation report.
	if !strings.Contains(chaosTable.String(), "cells 8   trials 16") {
		t.Fatalf("table/summary missing:\n%s", chaosTable.String())
	}

	chaos := loadRecords(t, chaosOut)
	if len(chaos) != len(clean) {
		t.Fatalf("chaos run emitted %d records, clean %d", len(chaos), len(clean))
	}
	for i, rec := range chaos {
		switch i {
		case 2, 9:
			if rec.FaultKind != registry.FaultPanic || rec.Key() != clean[i].Key() {
				t.Fatalf("record %d: kind %q key %q", i, rec.FaultKind, rec.Key())
			}
		case stallAt:
			if rec.FaultKind != registry.FaultDeadline || rec.Windows != 1 {
				t.Fatalf("record %d: kind %q windows %d", i, rec.FaultKind, rec.Windows)
			}
		default:
			if rec != clean[i] {
				t.Fatalf("clean record %d diverged under chaos:\nclean %+v\ngot   %+v", i, clean[i], rec)
			}
		}
	}
}

// TestSweepChaosResumeMatchesUninterrupted: interrupting a chaos run and
// resuming it with the same -inject flags reproduces the uninterrupted
// chaos run — table, summary, and records (fault stacks normalized).
func TestSweepChaosResumeMatchesUninterrupted(t *testing.T) {
	dir := t.TempDir()
	fullOut := filepath.Join(dir, "full.jsonl")
	resOut := filepath.Join(dir, "resumed.jsonl")
	inject := []string{"-inject-panics", "1,6"}

	var fullTable strings.Builder
	err := run(smokeArgs(append([]string{"-out", fullOut, "-checkpoint", "off"}, inject...)...), &fullTable, nil)
	if err == nil || !strings.Contains(err.Error(), "faulted") {
		t.Fatalf("uninterrupted chaos run: err = %v", err)
	}

	err = run(smokeArgs(append([]string{"-out", resOut, "-interrupt-after", "4"}, inject...)...), &strings.Builder{}, nil)
	if !errors.Is(err, registry.ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	var resumedTable strings.Builder
	err = run(smokeArgs(append([]string{"-out", resOut, "-resume"}, inject...)...), &resumedTable, nil)
	if err == nil || !strings.Contains(err.Error(), "faulted") {
		t.Fatalf("resumed chaos run: err = %v", err)
	}

	if fullTable.String() != resumedTable.String() {
		t.Fatalf("resumed chaos table diverged:\n%s\n---\n%s", fullTable.String(), resumedTable.String())
	}
	full, resumed := loadRecords(t, fullOut), loadRecords(t, resOut)
	if len(full) != len(resumed) {
		t.Fatalf("record counts diverged: %d vs %d", len(full), len(resumed))
	}
	for i := range full {
		if full[i] != resumed[i] {
			t.Fatalf("record %d diverged:\nfull    %+v\nresumed %+v", i, full[i], resumed[i])
		}
	}
}

// TestSweepQuarantineReported: a cell that faults repeatedly is quarantined
// end to end — remaining trials skipped, table annotated, exit non-zero.
func TestSweepQuarantineReported(t *testing.T) {
	args := []string{
		"-algs", "benor", "-advs", "full", "-scheds", "adversary",
		"-sizes", "12:1", "-inputs", "split",
		"-trials", "5", "-max-windows", "2000",
		"-inject-panics", "0-2",
	}
	var out strings.Builder
	err := run(args, &out, nil)
	if err == nil || !strings.Contains(err.Error(), "1 quarantined cells") {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(out.String(), "faulted-trials 5   quarantined-cells 1") ||
		!strings.Contains(out.String(), "quarantined: benor/full/adversary/split 12:1") {
		t.Fatalf("quarantine report missing:\n%s", out.String())
	}
}

// TestSweepTransientWriteFailureAbsorbed: a write failure shorter than the
// retry budget is invisible — clean exit, byte-identical outputs.
func TestSweepTransientWriteFailureAbsorbed(t *testing.T) {
	dir := t.TempDir()
	cleanOut := filepath.Join(dir, "clean.jsonl")
	flakyOut := filepath.Join(dir, "flaky.jsonl")
	if err := run(smokeArgs("-out", cleanOut, "-checkpoint", "off"), &strings.Builder{}, nil); err != nil {
		t.Fatal(err)
	}
	if err := run(smokeArgs("-out", flakyOut, "-checkpoint", "off",
		"-inject-out-failures", "1x2", "-retry-backoff", "1ms"), &strings.Builder{}, nil); err != nil {
		t.Fatalf("transient write failure surfaced: %v", err)
	}
	clean, _ := os.ReadFile(cleanOut)
	flaky, _ := os.ReadFile(flakyOut)
	if string(clean) != string(flaky) {
		t.Fatal("retry-absorbed run diverged from clean run")
	}
}

// TestSweepPermanentWriteFailureDropsSink: a failure outlasting the retry
// budget drops the sink, reports it by name, and exits non-zero — but the
// sweep itself completes with its table and aggregates intact.
func TestSweepPermanentWriteFailureDropsSink(t *testing.T) {
	dir := t.TempDir()
	cleanOut := filepath.Join(dir, "clean.jsonl")
	deadOut := filepath.Join(dir, "dead.jsonl")
	var cleanTable strings.Builder
	if err := run(smokeArgs("-out", cleanOut, "-checkpoint", "off"), &cleanTable, nil); err != nil {
		t.Fatal(err)
	}
	var chaosTable strings.Builder
	err := run(smokeArgs("-out", deadOut, "-checkpoint", "off",
		"-inject-out-failures", "1+", "-retry", "2", "-retry-backoff", "1ms"), &chaosTable, nil)
	if err == nil || !strings.Contains(err.Error(), "1 dropped sinks") {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(chaosTable.String(), "sink dropped: "+deadOut) {
		t.Fatalf("drop report missing:\n%s", chaosTable.String())
	}
	// The aggregate table is unaffected: everything the clean run printed
	// leads the degraded run's output.
	if !strings.HasPrefix(chaosTable.String(), cleanTable.String()) {
		t.Fatalf("degraded run lost table output:\n%s\n---\n%s", cleanTable.String(), chaosTable.String())
	}
}

// TestSweepCheckpointFailureStillResumable: dropping the checkpoint sink
// mid-run exits non-zero, and the -out export (whose sink was healthy) is
// still byte-identical to the clean run's.
func TestSweepCheckpointFailureStillResumable(t *testing.T) {
	dir := t.TempDir()
	cleanOut := filepath.Join(dir, "clean.jsonl")
	chaosOut := filepath.Join(dir, "chaos.jsonl")
	if err := run(smokeArgs("-out", cleanOut, "-checkpoint", "off"), &strings.Builder{}, nil); err != nil {
		t.Fatal(err)
	}
	var table strings.Builder
	err := run(smokeArgs("-out", chaosOut,
		"-inject-ckpt-failures", "1+", "-retry", "2", "-retry-backoff", "1ms"), &table, nil)
	if err == nil || !strings.Contains(err.Error(), "dropped sinks") {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(table.String(), "sink dropped: "+chaosOut+".ckpt") {
		t.Fatalf("checkpoint drop not reported:\n%s", table.String())
	}
	clean, _ := os.ReadFile(cleanOut)
	chaos, _ := os.ReadFile(chaosOut)
	if string(clean) != string(chaos) {
		t.Fatal("healthy -out sink diverged while the checkpoint sink failed")
	}
}
