package main

import (
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"asyncagree/internal/registry"
)

func TestSweepDeterministicOutput(t *testing.T) {
	args := []string{
		"-algs", "core,benor", "-advs", "full,splitvote",
		"-sizes", "12:1", "-inputs", "split,ones",
		"-trials", "2", "-max-windows", "2000",
	}
	var out1, out2 strings.Builder
	if err := run(args, &out1, nil); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &out2, nil); err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Fatalf("two identical sweeps produced different output:\n%s\n---\n%s", out1.String(), out2.String())
	}
	if !strings.Contains(out1.String(), "splitvote") || !strings.Contains(out1.String(), "benor") {
		t.Fatalf("missing cells:\n%s", out1.String())
	}
}

func TestSweepSerialMatchesParallelOutput(t *testing.T) {
	base := []string{
		"-algs", "core", "-advs", "full,storm", "-sizes", "12:1,18:2",
		"-trials", "2", "-max-windows", "1000",
	}
	var par, ser strings.Builder
	if err := run(base, &par, nil); err != nil {
		t.Fatal(err)
	}
	if err := run(append([]string{"-serial"}, base...), &ser, nil); err != nil {
		t.Fatal(err)
	}
	if par.String() != ser.String() {
		t.Fatalf("parallel output diverged from serial:\n%s\n---\n%s", par.String(), ser.String())
	}
}

func TestSweepList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out, nil); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"core", "paxos", "splitvote", "silence", "blocks",
		"schedulers:", "adversary", "ascmin", "seeded", "laggard", "alternate"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("inventory missing %q:\n%s", want, out.String())
		}
	}
}

// TestSweepSchedulerAxis drives the -scheds flag end to end: one cell per
// requested scheduler, all compatible with the benign adversary, rendered
// in the scheduler column.
func TestSweepSchedulerAxis(t *testing.T) {
	args := []string{
		"-algs", "core", "-advs", "full",
		"-scheds", "adversary,full,ascmin,seeded,laggard,alternate",
		"-sizes", "12:1", "-inputs", "ones",
		"-trials", "2", "-max-windows", "2000",
	}
	var out strings.Builder
	if err := run(args, &out, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cells 6") {
		t.Fatalf("want one cell per scheduler:\n%s", out.String())
	}
	for _, sched := range []string{"ascmin", "seeded", "laggard", "alternate"} {
		if !strings.Contains(out.String(), sched) {
			t.Fatalf("scheduler %q missing from table:\n%s", sched, out.String())
		}
	}
}

func TestSweepRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-algs", "nope"},
		{"-advs", "nope"},
		{"-scheds", "nope"},
		{"-inputs", "nope"},
		{"-sizes", "12"},
		{"-sizes", "a:b"},
		{"-trials", "-1"},
		{"-resume"}, // no -out/-checkpoint to resume from
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out, nil); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

// smokeArgs is the small grid the streaming/resume tests run: two
// algorithms under two adversaries, 12 trials total.
func smokeArgs(extra ...string) []string {
	return append([]string{
		"-algs", "core,benor", "-advs", "full,splitvote", "-scheds", "adversary",
		"-sizes", "12:1", "-inputs", "split,ones",
		"-trials", "2", "-max-windows", "2000",
	}, extra...)
}

// TestSweepOutSinks checks the -out record streams: the JSONL export has
// one record per trial in index order, and the CSV export mirrors it under
// the fixed header.
func TestSweepOutSinks(t *testing.T) {
	dir := t.TempDir()
	jsonl := filepath.Join(dir, "results.jsonl")
	csv := filepath.Join(dir, "results.csv")

	var out strings.Builder
	if err := run(smokeArgs("-out", jsonl, "-checkpoint", "off"), &out, nil); err != nil {
		t.Fatal(err)
	}
	if err := run(smokeArgs("-out", csv, "-checkpoint", "off"), &out, nil); err != nil {
		t.Fatal(err)
	}

	jl, err := os.ReadFile(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	jLines := strings.Split(strings.TrimSuffix(string(jl), "\n"), "\n")
	// 2 algs × 2 advs compatible cells at 12:1 × 2 inputs × 2 seeds, minus
	// nothing: count must match the reported trial total.
	if !strings.Contains(out.String(), "trials 16") {
		t.Fatalf("unexpected trial count:\n%s", out.String())
	}
	if len(jLines) != 16 {
		t.Fatalf("jsonl lines = %d, want 16:\n%s", len(jLines), string(jl))
	}
	for i, line := range jLines {
		if !strings.Contains(line, `"index":`+strconv.Itoa(i)+",") {
			t.Fatalf("line %d out of order: %s", i, line)
		}
	}

	cl, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	cLines := strings.Split(strings.TrimSuffix(string(cl), "\n"), "\n")
	if len(cLines) != 17 {
		t.Fatalf("csv lines = %d, want header + 16", len(cLines))
	}
	if !strings.HasPrefix(cLines[0], "index,algorithm,adversary") {
		t.Fatalf("csv header = %q", cLines[0])
	}
}

// TestSweepResumeIdentical is the pipeline's central guarantee: a sweep
// interrupted partway (the -interrupt-after hook, the same clean-stop path
// SIGINT takes) and then resumed produces a table, a JSONL export, and a
// checkpoint byte-identical to an uninterrupted run's.
func TestSweepResumeIdentical(t *testing.T) {
	dir := t.TempDir()
	cleanOut := filepath.Join(dir, "clean.jsonl")
	resOut := filepath.Join(dir, "resumed.jsonl")

	var cleanTable strings.Builder
	if err := run(smokeArgs("-out", cleanOut), &cleanTable, nil); err != nil {
		t.Fatal(err)
	}

	var interruptedTable strings.Builder
	err := run(smokeArgs("-out", resOut, "-interrupt-after", "5"), &interruptedTable, nil)
	if !errors.Is(err, registry.ErrInterrupted) {
		t.Fatalf("interrupted run returned %v, want ErrInterrupted", err)
	}
	if interruptedTable.Len() != 0 {
		t.Fatalf("interrupted run printed a table:\n%s", interruptedTable.String())
	}
	ckpt, err := os.ReadFile(resOut + ".ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(ckpt), "\n"); got < 1+5 {
		t.Fatalf("checkpoint has %d lines, want at least header + 5 records:\n%s", got, ckpt)
	}

	var resumedTable strings.Builder
	if err := run(smokeArgs("-out", resOut, "-resume"), &resumedTable, nil); err != nil {
		t.Fatal(err)
	}

	if cleanTable.String() != resumedTable.String() {
		t.Fatalf("resumed table diverged from clean run:\n%s\n---\n%s",
			cleanTable.String(), resumedTable.String())
	}
	clean, err := os.ReadFile(cleanOut)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := os.ReadFile(resOut)
	if err != nil {
		t.Fatal(err)
	}
	if string(clean) != string(resumed) {
		t.Fatalf("resumed JSONL diverged from clean run:\n%s\n---\n%s", clean, resumed)
	}
}

// TestSweepResumeRejectsChangedGrid pins the misuse guard: a checkpoint
// recorded against one grid cannot silently seed a different one.
func TestSweepResumeRejectsChangedGrid(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "r.jsonl")
	err := run(smokeArgs("-out", out, "-interrupt-after", "3"), &strings.Builder{}, nil)
	if !errors.Is(err, registry.ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	// Same -out/-checkpoint, different trial count → different grid.
	args := append([]string{
		"-algs", "core,benor", "-advs", "full,splitvote", "-scheds", "adversary",
		"-sizes", "12:1", "-inputs", "split,ones",
		"-trials", "3", "-max-windows", "2000",
	}, "-out", out, "-resume")
	if err := run(args, &strings.Builder{}, nil); err == nil ||
		!strings.Contains(err.Error(), "grid") {
		t.Fatalf("changed grid accepted on resume: %v", err)
	}
}

// TestSweepTornCheckpointTail simulates a hard kill mid-write: a torn final
// checkpoint line is discarded and the resume still completes identically.
func TestSweepTornCheckpointTail(t *testing.T) {
	dir := t.TempDir()
	cleanOut := filepath.Join(dir, "clean.jsonl")
	resOut := filepath.Join(dir, "torn.jsonl")
	var cleanTable strings.Builder
	if err := run(smokeArgs("-out", cleanOut), &cleanTable, nil); err != nil {
		t.Fatal(err)
	}
	if err := run(smokeArgs("-out", resOut, "-interrupt-after", "4"), &strings.Builder{}, nil); !errors.Is(err, registry.ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	// Tear the checkpoint tail.
	f, err := os.OpenFile(resOut+".ckpt", os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"index":99,"algo`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var resumedTable strings.Builder
	if err := run(smokeArgs("-out", resOut, "-resume"), &resumedTable, nil); err != nil {
		t.Fatal(err)
	}
	if cleanTable.String() != resumedTable.String() {
		t.Fatal("resume after torn checkpoint tail diverged from clean run")
	}
	clean, _ := os.ReadFile(cleanOut)
	resumed, _ := os.ReadFile(resOut)
	if string(clean) != string(resumed) {
		t.Fatal("resumed JSONL after torn tail diverged from clean run")
	}
}
