package main

import (
	"strings"
	"testing"
)

func TestSweepDeterministicOutput(t *testing.T) {
	args := []string{
		"-algs", "core,benor", "-advs", "full,splitvote",
		"-sizes", "12:1", "-inputs", "split,ones",
		"-trials", "2", "-max-windows", "2000",
	}
	var out1, out2 strings.Builder
	if err := run(args, &out1); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &out2); err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Fatalf("two identical sweeps produced different output:\n%s\n---\n%s", out1.String(), out2.String())
	}
	if !strings.Contains(out1.String(), "splitvote") || !strings.Contains(out1.String(), "benor") {
		t.Fatalf("missing cells:\n%s", out1.String())
	}
}

func TestSweepSerialMatchesParallelOutput(t *testing.T) {
	base := []string{
		"-algs", "core", "-advs", "full,storm", "-sizes", "12:1,18:2",
		"-trials", "2", "-max-windows", "1000",
	}
	var par, ser strings.Builder
	if err := run(base, &par); err != nil {
		t.Fatal(err)
	}
	if err := run(append([]string{"-serial"}, base...), &ser); err != nil {
		t.Fatal(err)
	}
	if par.String() != ser.String() {
		t.Fatalf("parallel output diverged from serial:\n%s\n---\n%s", par.String(), ser.String())
	}
}

func TestSweepList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"core", "paxos", "splitvote", "silence", "blocks",
		"schedulers:", "adversary", "ascmin", "seeded", "laggard", "alternate"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("inventory missing %q:\n%s", want, out.String())
		}
	}
}

// TestSweepSchedulerAxis drives the -scheds flag end to end: one cell per
// requested scheduler, all compatible with the benign adversary, rendered
// in the scheduler column.
func TestSweepSchedulerAxis(t *testing.T) {
	args := []string{
		"-algs", "core", "-advs", "full",
		"-scheds", "adversary,full,ascmin,seeded,laggard,alternate",
		"-sizes", "12:1", "-inputs", "ones",
		"-trials", "2", "-max-windows", "2000",
	}
	var out strings.Builder
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cells 6") {
		t.Fatalf("want one cell per scheduler:\n%s", out.String())
	}
	for _, sched := range []string{"ascmin", "seeded", "laggard", "alternate"} {
		if !strings.Contains(out.String(), sched) {
			t.Fatalf("scheduler %q missing from table:\n%s", sched, out.String())
		}
	}
}

func TestSweepRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-algs", "nope"},
		{"-advs", "nope"},
		{"-scheds", "nope"},
		{"-inputs", "nope"},
		{"-sizes", "12"},
		{"-sizes", "a:b"},
		{"-trials", "-1"},
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}
