package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestBadFlags(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-inject-panics", "rand:3@7"}, &out); code != 2 {
		t.Fatalf("rand inject set: exit %d, want 2 (a daemon has no trial total)", code)
	}
	if code := run([]string{"-inject-panics", "not-a-set"}, &out); code != 2 {
		t.Fatalf("garbage inject set: exit %d, want 2", code)
	}
	if code := run([]string{"-no-such-flag"}, &out); code != 2 {
		t.Fatalf("unknown flag: exit %d, want 2", code)
	}
}

// lineBuffer is a concurrency-safe writer the test polls for the daemon's
// listen line.
type lineBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (lb *lineBuffer) Write(p []byte) (int, error) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.b.Write(p)
}

func (lb *lineBuffer) String() string {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.b.String()
}

// TestDaemonServesAndDrainsOnSIGTERM boots the real daemon body on a free
// port, serves requests through it (one-shot and journaled instance runs),
// then delivers a real SIGTERM and expects a clean drain: exit 0 and a
// replayable journal.
func TestDaemonServesAndDrainsOnSIGTERM(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "journal.jsonl")
	out := &lineBuffer{}
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0", "-journal", journal, "-workers", "1"}, out)
	}()

	// Wait for the listen line and extract the resolved address.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; output %q", out.String())
		}
		if s := out.String(); strings.Contains(s, "listening on ") {
			line := s[strings.Index(s, "listening on ")+len("listening on "):]
			addr = strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
		}
		time.Sleep(5 * time.Millisecond)
	}
	base := "http://" + addr

	// Liveness and readiness.
	for _, probe := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + probe)
		if err != nil {
			t.Fatalf("%s: %v", probe, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d", probe, resp.StatusCode)
		}
	}

	// One-shot run.
	resp, err := http.Post(base+"/run", "application/json",
		strings.NewReader(`{"algorithm":"core","n":12,"t":1,"seed":5}`))
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Result struct {
			AllDecided bool `json:"all_decided"`
			Agreement  bool `json:"agreement"`
		} `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !rep.Result.AllDecided || !rep.Result.Agreement {
		t.Fatalf("run: %d, %+v", resp.StatusCode, rep)
	}

	// Journaled instance runs.
	req, _ := http.NewRequest("PUT", base+"/instances/d1",
		strings.NewReader(`{"scenario":{"algorithm":"core","n":12,"t":1}}`))
	cresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusCreated {
		t.Fatalf("instance create: %d", cresp.StatusCode)
	}
	for i := 0; i < 2; i++ {
		rresp, err := http.Post(base+"/instances/d1/run", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		rresp.Body.Close()
		if rresp.StatusCode != http.StatusOK {
			t.Fatalf("instance run %d: %d", i, rresp.StatusCode)
		}
	}

	// Drain on SIGTERM: process-directed, exactly what systemd or the CI
	// smoke sends.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("drain exit code %d, want 0", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}

	// The journal it left behind replays: a fresh daemon restores the
	// instance with both runs.
	out2 := &lineBuffer{}
	exit2 := make(chan int, 1)
	go func() {
		exit2 <- run([]string{"-addr", "127.0.0.1:0", "-journal", journal}, out2)
	}()
	var addr2 string
	deadline = time.Now().Add(10 * time.Second)
	for addr2 == "" {
		if time.Now().After(deadline) {
			t.Fatalf("restarted daemon never announced; output %q", out2.String())
		}
		if s := out2.String(); strings.Contains(s, "listening on ") {
			line := s[strings.Index(s, "listening on ")+len("listening on "):]
			addr2 = strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
		}
		time.Sleep(5 * time.Millisecond)
	}
	gresp, err := http.Get(fmt.Sprintf("http://%s/instances/d1", addr2))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Runs int `json:"runs"`
	}
	if err := json.NewDecoder(gresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusOK || st.Runs != 2 {
		t.Fatalf("replayed instance: %d, runs %d (want 2)", gresp.StatusCode, st.Runs)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit2:
		if code != 0 {
			t.Fatalf("second drain exit code %d", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("restarted daemon did not drain")
	}
}
