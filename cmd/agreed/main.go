// Command agreed serves the agreement simulator as a long-running HTTP
// daemon over the pooled trial engine (internal/service): clients POST
// scenarios to /run and get back the decision, window count, and safety
// verdicts — optionally a streamed NDJSON event trace with ?trace=1 — while
// named long-lived instances under /instances/{name} accumulate runs across
// requests and survive crashes through an append-only journal.
//
// The daemon is failure-first: admission is bounded (-workers executing,
// -queue waiting, everything else shed with 503 + Retry-After), every
// request runs under a cooperative deadline (-deadline, shortenable
// per-request), a panicking trial poisons its pooled engine and answers a
// structured 500, and scenarios that fault repeatedly are quarantined until
// restart. /healthz is liveness; /readyz reports the full serving posture
// (admission occupancy, quarantined scenarios, journal health) and flips to
// 503 the moment a drain starts or the journal degrades.
//
// With -journal, instance creates and successful runs append to a
// crash-safe JSONL journal (the checkpoint salvage format): a daemon killed
// mid-run — SIGKILL included — replays the verified prefix on restart and
// resumes byte-identically, discarding at most a torn final line.
//
// SIGINT/SIGTERM starts a graceful drain: stop admitting, finish in-flight
// requests (up to -drain-timeout), flush the journal, exit 0. A second
// signal, or an overrun drain, exits non-zero immediately.
//
// Usage:
//
//	agreed -addr :8080 -journal agreed.jsonl
//	agreed -addr 127.0.0.1:0 -workers 4 -queue 128 -deadline 10s
//	agreed -inject-panics 3,7       # chaos: panic the 4th and 8th requests
//
//	curl -s localhost:8080/run -d '{"algorithm":"core","n":12,"t":1,"seed":7}'
//	curl -s -X PUT localhost:8080/instances/exp1 -d '{"scenario":{"algorithm":"core","n":12,"t":1}}'
//	curl -s -X POST localhost:8080/instances/exp1/run
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"asyncagree/internal/faultinject"
	"asyncagree/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

// run is the testable daemon body: stdout receives the resolved listen
// address line (scripts and tests parse it for port-0 listens), everything
// else logs to stderr. It returns the process exit code.
func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("agreed", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		journalPath  = fs.String("journal", "", "append-only instance journal path (empty: in-memory only)")
		workers      = fs.Int("workers", 0, "concurrently executing trials (0: GOMAXPROCS)")
		queue        = fs.Int("queue", 64, "admission queue depth; arrivals beyond it are shed with 503")
		deadline     = fs.Duration("deadline", 30*time.Second, "per-request execution deadline")
		drainTimeout = fs.Duration("drain-timeout", 15*time.Second, "graceful-drain budget after SIGTERM/SIGINT")
		quarAfter    = fs.Int("quarantine-after", 3, "quarantine a scenario after this many consecutive faults (<0 disables)")
		shardWorkers = fs.Int("shard-workers", 0, "intra-trial shard workers (<=1: serial; results identical at any setting)")
		columnar     = fs.Bool("columnar", true, "columnar vote-tally fast path for algorithms that support it (results identical either way)")
		injectPanics = fs.String("inject-panics", "", "chaos: explicit request indices whose trials panic (e.g. 0,5,9-12)")
		maxWindows   = fs.Int("max-windows", 20000, "default per-trial window budget")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var inject *faultinject.TrialSet
	if *injectPanics != "" {
		// rand:K@seed draws K indices from a known trial total; a daemon's
		// request stream has no total, so only explicit sets make sense here.
		if strings.HasPrefix(*injectPanics, "rand:") {
			fmt.Fprintln(os.Stderr, "agreed: -inject-panics: rand:K@seed needs a trial total; a daemon has none — use an explicit set")
			return 2
		}
		ts, err := faultinject.ParseTrialSet(*injectPanics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "agreed: -inject-panics: %v\n", err)
			return 2
		}
		inject = ts
	}

	srv, err := service.New(service.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		RequestTimeout:    *deadline,
		DefaultMaxWindows: *maxWindows,
		QuarantineAfter:   *quarAfter,
		ShardWorkers:      *shardWorkers,
		DisableColumnar:   !*columnar,
		JournalPath:       *journalPath,
		InjectPanics:      inject,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "agreed: %v\n", err)
		return 1
	}
	if sum := srv.SalvageSummary(); sum != "" {
		fmt.Fprintf(os.Stderr, "agreed: journal salvage: %s\n", sum)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "agreed: %v\n", err)
		srv.Close()
		return 1
	}
	// The resolved address goes to stdout so scripts using port 0 can find
	// the server; everything else logs to stderr.
	fmt.Fprintf(stdout, "agreed: listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	select {
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "agreed: serve: %v\n", err)
		srv.Close()
		return 1
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "agreed: %v: draining (finishing in-flight requests, up to %v)\n", s, *drainTimeout)
	}

	// Drain: stop admitting (readyz goes 503 immediately), then give
	// in-flight requests the drain budget. A second signal aborts the wait.
	srv.StartDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		<-sig
		cancel()
	}()

	code := 0
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "agreed: drain incomplete: %v\n", err)
		hs.Close()
		code = 1
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "agreed: journal close: %v\n", err)
		code = 1
	}
	if code == 0 {
		fmt.Fprintln(os.Stderr, "agreed: drained cleanly")
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "agreed: serve: %v\n", err)
		code = 1
	}
	return code
}
