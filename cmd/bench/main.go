// Command bench runs the simulator substrate micro-benchmarks through
// testing.Benchmark and writes the results as JSON, giving every PR a
// recorded perf trajectory to compare against. With -compare it instead
// diffs a fresh run against a committed baseline and exits non-zero on a
// regression, which CI runs as a perf smoke step.
//
// Usage:
//
//	bench                               # print JSON to stdout
//	bench -out BENCH_baseline.json      # record the committed baseline
//	bench -benchtime 2s                 # more stable numbers
//	bench -compare BENCH_baseline.json  # perf smoke: fail on regression
//	bench -cpuprofile cpu.pprof         # profile the run (go tool pprof)
//	bench -memprofile mem.pprof         # heap profile at end of run
//
// Regression rules for -compare: an entry fails on ns/op above
// baseline*(1+threshold) (default 0.25), or on allocs/op above
// baseline*(1+allocs-threshold)+allocs-grace. The two thresholds are
// separate flags so CI can widen the noisy, machine-dependent ns/op bound
// without loosening the machine-independent allocation gate. The small
// absolute grace (default 8) absorbs cross-machine variance in amortized
// warm-up allocations (worker counts change how many pooled trial engines
// are constructed before steady state); any systematic re-introduction of
// per-window or per-trial allocation exceeds it immediately. A baseline
// entry with no matching fresh benchmark also fails the comparison: a
// renamed or deleted case must come with a regenerated baseline, not a
// silent coverage hole.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"asyncagree/internal/benchcases"
)

// Entry is one benchmark measurement. Cases whose body reports a "msgs/op"
// metric (the Window* family: n² messages per window) also record the
// per-message normalization, so O(n²)-inherent growth across sizes stays
// distinguishable from per-message kernel overhead.
type Entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerMsg    float64 `json:"ns_per_msg,omitempty"`
	MsgsPerOp   float64 `json:"msgs_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
}

// baselineDoc is the BENCH_baseline.json layout.
type baselineDoc struct {
	Note    string  `json:"note"`
	Entries []Entry `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

// suite returns the benchmark inventory in recording order. The bodies live
// in internal/benchcases, shared with the root bench_test.go, so the
// baseline and `go test -bench` measure identical code.
func suite() []struct {
	name string
	fn   func(b *testing.B)
} {
	var cases []struct {
		name string
		fn   func(b *testing.B)
	}
	add := func(name string, fn func(b *testing.B)) {
		cases = append(cases, struct {
			name string
			fn   func(b *testing.B)
		}{name, fn})
	}
	for _, n := range []int{12, 24, 48, 1024} {
		add("WindowThroughput/"+benchcases.SizeLabel(n), benchcases.WindowThroughput(n))
	}
	for _, n := range []int{256, 1024} {
		add("WindowThroughputColumnar/"+benchcases.SizeLabel(n),
			benchcases.WindowThroughputColumnar(n))
	}
	for _, n := range []int{256, 1024} {
		add("WindowThroughputMessage/"+benchcases.SizeLabel(n),
			benchcases.WindowThroughputMessage(n))
	}
	for _, n := range []int{256, 1024} {
		add("WindowThroughputSharded/"+benchcases.SizeLabel(n)+"/w=4",
			benchcases.WindowThroughputSharded(n, 4))
	}
	add("SplitVoteWindow/"+benchcases.SizeLabel(24), benchcases.SplitVoteWindow(24))
	add("BrachaWindow/"+benchcases.SizeLabel(13), benchcases.BrachaWindow(13))
	add("PaxosDecision/"+benchcases.SizeLabel(5), benchcases.PaxosDecision(5))
	add("BufferOps", benchcases.BufferOps())
	add("SweepThroughput", benchcases.SweepThroughput())
	add("SweepMemory/trials=4096", benchcases.SweepMemory(4096))
	return cases
}

func run(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	var (
		out          = fs.String("out", "", "write JSON here instead of stdout")
		benchtime    = fs.Duration("benchtime", time.Second, "target time per benchmark")
		compare      = fs.String("compare", "", "diff a fresh run against this baseline JSON and exit non-zero on regression")
		threshold    = fs.Float64("threshold", 0.25, "relative ns/op regression threshold for -compare")
		allocsThresh = fs.Float64("allocs-threshold", 0.25, "relative allocs/op regression threshold for -compare")
		allocsGrace  = fs.Int64("allocs-grace", 8, "absolute allocs/op grace for -compare")
		cpuprofile   = fs.String("cpuprofile", "", "write a CPU profile of the benchmark run here (go test convention)")
		memprofile   = fs.String("memprofile", "", "write an end-of-run heap profile here (go test convention)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	testing.Init()
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		return err
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	var entries []Entry
	for _, c := range suite() {
		res := testing.Benchmark(c.fn)
		e := Entry{
			Name:        c.name,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			N:           res.N,
		}
		if msgs := res.Extra["msgs/op"]; msgs > 0 {
			e.MsgsPerOp = msgs
			e.NsPerMsg = e.NsPerOp / msgs
		}
		entries = append(entries, e)
		fmt.Fprintf(os.Stderr, "%-32s %12.0f ns/op %8d allocs/op %10d B/op",
			e.Name, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp)
		if e.MsgsPerOp > 0 {
			fmt.Fprintf(os.Stderr, " %10.2f ns/msg", e.NsPerMsg)
		}
		fmt.Fprintln(os.Stderr)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // up-to-date heap statistics, as go test does
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}

	if *compare != "" {
		return compareBaseline(*compare, entries, *threshold, *allocsThresh, *allocsGrace)
	}

	doc := baselineDoc{
		Note:    "regenerate with: go run ./cmd/bench -out BENCH_baseline.json",
		Entries: entries,
	}
	js, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	js = append(js, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(js)
		return err
	}
	return os.WriteFile(*out, js, 0o644)
}

// compareBaseline diffs fresh entries against the baseline file and returns
// an error (non-zero exit) if any shared entry regressed or any baseline
// entry was not measured by the fresh run.
func compareBaseline(path string, fresh []Entry, nsThresh, allocsThresh float64, allocsGrace int64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base baselineDoc
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	byName := make(map[string]Entry, len(base.Entries))
	for _, e := range base.Entries {
		byName[e.Name] = e
	}

	regressions := 0
	measured := make(map[string]bool, len(fresh))
	for _, e := range fresh {
		measured[e.Name] = true
		b, ok := byName[e.Name]
		if !ok {
			fmt.Printf("%-28s NEW (no baseline entry; record with -out)\n", e.Name)
			continue
		}
		nsLimit := b.NsPerOp * (1 + nsThresh)
		allocLimit := int64(math.Ceil(float64(b.AllocsPerOp)*(1+allocsThresh))) + allocsGrace
		status := "ok"
		if e.NsPerOp > nsLimit || e.AllocsPerOp > allocLimit {
			status = "REGRESSION"
			regressions++
		}
		fmt.Printf("%-28s %-10s ns/op %12.0f -> %12.0f (limit %12.0f)  allocs/op %8d -> %8d (limit %8d)\n",
			e.Name, status, b.NsPerOp, e.NsPerOp, nsLimit, b.AllocsPerOp, e.AllocsPerOp, allocLimit)
	}
	for _, b := range base.Entries {
		if !measured[b.Name] {
			fmt.Printf("%-28s MISSING (baseline entry not measured; regenerate the baseline if it was renamed or removed)\n", b.Name)
			regressions++
		}
	}
	if regressions > 0 {
		return fmt.Errorf("%d benchmark(s) regressed or went missing vs %s", regressions, path)
	}
	fmt.Printf("no regressions vs %s (%d entries compared)\n", path, len(fresh))
	return nil
}
