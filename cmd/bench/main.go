// Command bench runs the simulator substrate micro-benchmarks through
// testing.Benchmark and writes the results as JSON, giving every PR a
// recorded perf trajectory to compare against.
//
// Usage:
//
//	bench                          # print JSON to stdout
//	bench -out BENCH_baseline.json # record the committed baseline
//	bench -benchtime 2s            # more stable numbers
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"asyncagree/internal/benchcases"
)

// Entry is one benchmark measurement.
type Entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	var (
		out       = fs.String("out", "", "write JSON here instead of stdout")
		benchtime = fs.Duration("benchtime", time.Second, "target time per benchmark")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	testing.Init()
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		return err
	}

	var entries []Entry
	record := func(name string, fn func(b *testing.B)) {
		res := testing.Benchmark(fn)
		entries = append(entries, Entry{
			Name:        name,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			N:           res.N,
		})
		fmt.Fprintf(os.Stderr, "%-28s %12.0f ns/op %8d allocs/op %10d B/op\n",
			name, entries[len(entries)-1].NsPerOp, res.AllocsPerOp(), res.AllocedBytesPerOp())
	}

	// The benchmark bodies live in internal/benchcases, shared with the root
	// bench_test.go, so this baseline and CI measure identical code.
	for _, n := range []int{12, 24, 48} {
		record(fmt.Sprintf("WindowThroughput/n=%d", n), benchcases.WindowThroughput(n))
	}
	record("SplitVoteWindow/n=24", benchcases.SplitVoteWindow(24))
	record("BufferOps", benchcases.BufferOps())
	record("SweepThroughput", benchcases.SweepThroughput())

	doc := struct {
		Note    string  `json:"note"`
		Entries []Entry `json:"benchmarks"`
	}{
		Note:    "regenerate with: go run ./cmd/bench -out BENCH_baseline.json",
		Entries: entries,
	}
	js, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	js = append(js, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(js)
		return err
	}
	return os.WriteFile(*out, js, 0o644)
}
