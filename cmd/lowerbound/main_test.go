package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("8, 12,16")
	if err != nil || len(got) != 3 || got[0] != 8 || got[1] != 12 || got[2] != 16 {
		t.Fatalf("parseInts = %v, %v", got, err)
	}
	if _, err := parseInts("8,x"); err == nil {
		t.Fatal("bad list accepted")
	}
}

func TestRunStallMode(t *testing.T) {
	err := run([]string{"-mode", "stall", "-ns", "8,12", "-trials", "4", "-max-windows", "50000"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunSurvivalMode(t *testing.T) {
	err := run([]string{"-mode", "survival", "-n", "12", "-t", "1", "-trials", "4"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunSeparationMode(t *testing.T) {
	err := run([]string{"-mode", "separation", "-n", "8", "-t", "1", "-trials", "4", "-max-windows", "50000"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownMode(t *testing.T) {
	if err := run([]string{"-mode", "nope"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}
