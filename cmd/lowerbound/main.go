// Command lowerbound runs the Section 4/5 lower-bound experiments in
// isolation with tunable parameters: the exponential stall series, the
// survival curve, and the Z-set Hamming separation measurement.
//
// Usage:
//
//	lowerbound -mode stall -ns 8,16,24,32 -tfrac 0.125 -trials 20
//	lowerbound -mode survival -n 24 -t 3 -trials 40
//	lowerbound -mode separation -n 12 -t 1 -trials 20
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"asyncagree/internal/lowerbound"
	"asyncagree/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lowerbound:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lowerbound", flag.ContinueOnError)
	var (
		mode   = fs.String("mode", "stall", "stall | survival | separation")
		nsRaw  = fs.String("ns", "8,12,16,20,24", "comma-separated n values (stall mode)")
		tfrac  = fs.Float64("tfrac", 0.125, "t/n ratio (stall mode)")
		n      = fs.Int("n", 24, "processors (survival/separation modes)")
		t      = fs.Int("t", 3, "fault budget (survival/separation modes)")
		trials = fs.Int("trials", 20, "trials per configuration")
		maxW   = fs.Int("max-windows", 1000000, "window budget per trial")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *mode {
	case "stall":
		ns, err := parseInts(*nsRaw)
		if err != nil {
			return err
		}
		series, err := lowerbound.StallSeries(ns, *tfrac, *trials, *maxW)
		if err != nil {
			return err
		}
		table := stats.NewTable("n", "t", "mean-windows", "median", "p90", "max", "beaten-frac")
		for _, p := range series {
			table.AddRow(p.N, p.T, p.Summary.Mean, p.Summary.Median, p.Summary.P90, p.Summary.Max, p.GaveUpFraction)
		}
		fmt.Println(table.String())
		if fit, ok := lowerbound.FitGrowth(series); ok {
			fmt.Printf("fit: mean ~ %.3g * exp(%.4f n), R^2 = %.3f\n", fit.C, fit.Alpha, fit.R2)
		}
	case "survival":
		ws := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
		curve, err := lowerbound.SurvivalCurve(*n, *t, ws, *trials)
		if err != nil {
			return err
		}
		table := stats.NewTable("W", "P[no decision within W]")
		for i, w := range ws {
			table.AddRow(w, curve[i])
		}
		fmt.Println(table.String())
	case "separation":
		res, err := lowerbound.MeasureSeparation(*n, *t, *trials, *maxW)
		if err != nil {
			return err
		}
		fmt.Printf("n=%d t=%d |Z0_0|=%d |Z0_1|=%d Delta=%d claim(Delta > t)=%v\n",
			res.N, res.T, res.Z0Size, res.Z1Size, res.Distance, res.Holds)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad n list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}
