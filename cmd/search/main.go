// Command search runs the adversary-optimization driver: instead of
// replaying the paper's fixed lower-bound construction, it searches the
// (adversary knobs × delivery scheduler) space for the configuration that
// stalls an algorithm longest at each system size. A coarse grid over every
// compatible pairing and knob extreme is refined around the frontier, then
// a seeded evolutionary stage mutates the best candidates; every evaluation
// is a batch of seeded registry trials scored by mean windows-to-first-
// decision (censored at -max-windows).
//
// The search is deterministic end to end: the same flags and -seed produce
// byte-identical output, serial (-serial) or parallel, at any
// -shard-workers setting. With -out the per-evaluation records stream as
// JSONL and a checkpoint file (default <out>.ckpt, -checkpoint overrides,
// "off" disables) records every completed evaluation; an interrupted
// search — Ctrl-C flushes cleanly and prints this hint — rerun with
// -resume replays the checkpointed prefix without re-running a trial and
// finishes with output byte-identical to an uninterrupted run.
//
// Faulted evaluations (panics, injected stalls) become records instead of
// crashes and never enter the frontier; sink writes retry with
// deterministic backoff (-retry) and degrade to a reported drop. The
// -inject-* flags drive the same deterministic fault-injection harness as
// cmd/sweep. A search that completes but saw faults or dropped sinks
// prints its frontier and exits non-zero.
//
// Usage:
//
//	search                                  # default: core algorithm at 12:1 and 16:2
//	search -alg benor -sizes 8:1            # other algorithms and shapes
//	search -advs random,splitvote           # restrict the candidate space
//	search -budget 500 -trials 5            # cap total trials, deepen per-candidate sampling
//	search -out frontier.jsonl -progress    # stream evaluation records, report progress
//	search -out frontier.jsonl -resume      # continue an interrupted search
//	search -list                            # print the registered inventory (with knobs)
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"asyncagree/internal/ckptio"
	"asyncagree/internal/faultinject"
	"asyncagree/internal/registry"
	"asyncagree/internal/retry"
	"asyncagree/internal/search"
)

func main() {
	stop := installInterrupt()
	if err := run(os.Args[1:], os.Stdout, stop); err != nil {
		fmt.Fprintln(os.Stderr, "search:", err)
		os.Exit(1)
	}
}

// installInterrupt converts the first SIGINT or SIGTERM into a clean-stop
// request (the search flushes sinks and the checkpoint, then exits with a
// resume hint); a second signal falls back to the default abrupt exit.
// SIGTERM gets the same treatment as Ctrl-C because container runtimes and
// batch schedulers terminate with it — losing the resume invocation to an
// orchestrated shutdown would defeat the checkpoint contract.
func installInterrupt() func() bool {
	var stopped atomic.Bool
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ch
		stopped.Store(true)
		signal.Stop(ch)
	}()
	return stopped.Load
}

func run(args []string, out io.Writer, interrupted func() bool) error {
	fs := flag.NewFlagSet("search", flag.ContinueOnError)
	var (
		alg        = fs.String("alg", "", "algorithm under attack (empty = core)")
		advs       = fs.String("advs", "", "comma-separated adversaries to search over (empty = all registered)")
		scheds     = fs.String("scheds", "", "comma-separated delivery schedulers to search over (empty = all registered)")
		sizes      = fs.String("sizes", "", "comma-separated n:t shapes, e.g. 12:1,24:3 (empty = default 12:1,16:2)")
		input      = fs.String("input", "", "input pattern evaluations run on (empty = split)")
		trials     = fs.Int("trials", 0, "seeded trials per candidate evaluation (0 = default 3)")
		maxWindows = fs.Int("max-windows", 0, "per-trial window budget; stalls censor at it (0 = default 2000)")
		budget     = fs.Int("budget", 0, "total trial budget across the whole search (0 = schedule-bounded)")
		seed       = fs.Uint64("seed", 0, "evolutionary-stage mutation seed (0 = default 1)")
		topk       = fs.Int("topk", 0, "per-size frontier width (0 = default 5)")
		refine     = fs.Int("refine", 0, "grid refinement rounds (0 = default 2, negative = none)")
		gens       = fs.Int("gens", 0, "evolutionary generations (0 = default 3, negative = none)")
		pop        = fs.Int("pop", 0, "candidates per generation (0 = default 8)")
		shardW     = fs.Int("shard-workers", 1, "intra-trial parallelism: goroutines sharding each window's delivery (1 = serial; output is identical at any setting)")
		serial     = fs.Bool("serial", false, "evaluate candidates on a serial loop instead of the worker pool")
		verbose    = fs.Bool("v", false, "also print skipped sizes")
		list       = fs.Bool("list", false, "print the registered algorithms, adversaries (with knobs), schedulers, and input patterns")
		outPath    = fs.String("out", "", "stream per-evaluation JSONL records here")
		ckptPath   = fs.String("checkpoint", "", "checkpoint file for -resume (default <out>.ckpt when -out is set; \"off\" disables)")
		resume     = fs.Bool("resume", false, "replay evaluations already recorded in the checkpoint and continue the search")
		progress   = fs.Bool("progress", false, "report evaluation progress to stderr")
		stopAfter  = fs.Int("interrupt-after", 0, "stop cleanly after N emitted evaluations, as if interrupted (testing hook for -resume)")

		retryN    = fs.Int("retry", 3, "attempts per sink/checkpoint write before the sink is dropped")
		retryBase = fs.Duration("retry-backoff", 5*time.Millisecond, "base of the deterministic exponential retry backoff")

		injPanics  = fs.String("inject-panics", "", "fault injection: evaluations to panic (\"3,7,9-12\" or \"rand:K@seed\")")
		injStalls  = fs.String("inject-stalls", "", "fault injection: evaluations to stall (same syntax)")
		injStallAt = fs.Int("inject-stall-window", 0, "window at which injected stalls fire (0 = default)")
		injOut     = fs.String("inject-out-failures", "", "fault injection: -out write-failure schedule (\"N\", \"NxK\", \"N+\", comma-composed)")
		injCkpt    = fs.String("inject-ckpt-failures", "", "fault injection: checkpoint write-failure schedule (same syntax)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		registry.WriteInventory(out)
		return nil
	}

	if *shardW < 1 {
		return fmt.Errorf("shard-workers must be >= 1, got %d", *shardW)
	}
	if *trials < 0 {
		return fmt.Errorf("trials must be >= 0, got %d", *trials)
	}
	if *maxWindows < 0 {
		return fmt.Errorf("max-windows must be >= 0, got %d", *maxWindows)
	}
	if *budget < 0 {
		return fmt.Errorf("budget must be >= 0, got %d", *budget)
	}
	if *topk < 0 {
		return fmt.Errorf("topk must be >= 0, got %d", *topk)
	}
	if *pop < 0 {
		return fmt.Errorf("pop must be >= 0, got %d", *pop)
	}
	if *stopAfter < 0 {
		return fmt.Errorf("interrupt-after must be >= 0, got %d", *stopAfter)
	}
	if *retryN < 1 {
		return fmt.Errorf("retry must be >= 1 attempt, got %d", *retryN)
	}
	if *retryBase < 0 {
		return fmt.Errorf("retry-backoff must be >= 0, got %s", *retryBase)
	}
	if *injStallAt < 0 {
		return fmt.Errorf("inject-stall-window must be >= 0, got %d", *injStallAt)
	}
	o := search.Options{
		Algorithm:          *alg,
		Input:              *input,
		Adversaries:        splitList(*advs),
		Schedulers:         splitList(*scheds),
		TrialsPerCandidate: *trials,
		MaxWindows:         *maxWindows,
		Budget:             *budget,
		Seed:               *seed,
		TopK:               *topk,
		Refinements:        *refine,
		Generations:        *gens,
		Population:         *pop,
		ShardWorkers:       *shardW,
	}
	var err error
	if o.Sizes, err = parseSizes(*sizes); err != nil {
		return err
	}
	inject := &faultinject.Plan{StallWindow: *injStallAt}
	if inject.Panic, err = faultinject.ParseTrialSet(*injPanics); err != nil {
		return err
	}
	if inject.Stall, err = faultinject.ParseTrialSet(*injStalls); err != nil {
		return err
	}
	outFailures, err := faultinject.ParseWriteFailures(*injOut)
	if err != nil {
		return err
	}
	ckptFailures, err := faultinject.ParseWriteFailures(*injCkpt)
	if err != nil {
		return err
	}
	retryPolicy := retry.Policy{Attempts: *retryN, Base: *retryBase, Max: 16 * *retryBase}

	ckpt := *ckptPath
	switch {
	case ckpt == "off":
		ckpt = ""
	case ckpt == "" && *outPath != "":
		ckpt = *outPath + ".ckpt"
	}
	if *resume && ckpt == "" {
		return errors.New("-resume needs a checkpoint: set -out or -checkpoint")
	}

	sig := o.Signature()
	var prefix []search.EvalRecord
	if *resume {
		var salvage *registry.SalvageReport
		if prefix, salvage, err = search.LoadCheckpoint(ckpt, sig); err != nil {
			return err
		}
		if !salvage.Empty() {
			fmt.Fprintf(os.Stderr, "search: %s: %s\n", ckpt, salvage)
		}
		if *progress && len(prefix) > 0 {
			fmt.Fprintf(os.Stderr, "search: resuming past %d checkpointed evaluations\n", len(prefix))
		}
	}

	ro := search.RunOptions{Resume: prefix, Serial: *serial}
	if !inject.Empty() {
		ro.Inject = inject
	}
	var closers []io.Closer
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()
	if *outPath != "" {
		sink, f, err := openOutSink(*outPath, prefix, retryPolicy, outFailures)
		if err != nil {
			return err
		}
		closers = append(closers, f)
		ro.Sinks = append(ro.Sinks, search.NamedSink{Name: *outPath, Sink: sink})
	}
	if ckpt != "" {
		sink, f, err := openCheckpointSink(ckpt, sig, prefix, retryPolicy, ckptFailures)
		if err != nil {
			return err
		}
		closers = append(closers, f)
		ro.Sinks = append(ro.Sinks, search.NamedSink{Name: ckpt, Sink: sink})
	}

	var emitted atomic.Int64
	ro.Stop = func() bool {
		if interrupted != nil && interrupted() {
			return true
		}
		return *stopAfter > 0 && emitted.Load() >= int64(*stopAfter)
	}
	lastReport := time.Now()
	ro.Progress = func(evals, trialsSpent int) {
		emitted.Store(int64(evals))
		if *progress && time.Since(lastReport) >= 500*time.Millisecond {
			lastReport = time.Now()
			fmt.Fprintf(os.Stderr, "search: %d evaluations, %d trials\n", evals, trialsSpent)
		}
	}

	start := time.Now()
	rep, err := search.Run(o, ro)
	if errors.Is(err, search.ErrInterrupted) {
		// Echo the invocation with -resume added and -interrupt-after
		// stripped — re-running the hint verbatim must make progress, not
		// re-interrupt itself after the replayed prefix.
		var resumeArgs []string
		for i := 0; i < len(args); i++ {
			if args[i] == "-interrupt-after" || args[i] == "--interrupt-after" {
				i++ // skip the value too
				continue
			}
			if strings.HasPrefix(args[i], "-interrupt-after=") || strings.HasPrefix(args[i], "--interrupt-after=") {
				continue
			}
			resumeArgs = append(resumeArgs, args[i])
		}
		if !*resume {
			resumeArgs = append(resumeArgs, "-resume")
		}
		fmt.Fprintf(os.Stderr, "search: interrupted after %d evaluations; partial results are checkpointed — resume with: search %s\n",
			emitted.Load(), strings.Join(resumeArgs, " "))
		return err
	}
	if err != nil {
		return err
	}

	fmt.Fprint(out, rep.Table().String())
	fmt.Fprintf(out, "\nevaluations %d   trials %d   skipped-sizes %d\n",
		rep.Evals, rep.TrialsSpent, len(rep.Skipped))
	if rep.BudgetExhausted {
		fmt.Fprintf(out, "trial budget %d exhausted: later stages were truncated\n", o.Budget)
	}
	if *verbose {
		for _, s := range rep.Skipped {
			fmt.Fprintf(out, "  skipped: %s\n", s)
		}
	}
	// Degradation report: only unhealthy searches print it, and they exit
	// non-zero below, after the frontier has been delivered in full.
	if !rep.Healthy() {
		fmt.Fprintf(out, "faulted-evaluations %d   dropped-sinks %d\n",
			rep.Faulted, len(rep.SinkFailures))
		for _, s := range rep.SinkFailures {
			fmt.Fprintf(out, "  sink dropped: %s\n", s)
		}
	}
	fmt.Fprintf(os.Stderr, "search: %d evaluations (%d trials) in %.2fs\n",
		rep.Evals, rep.TrialsSpent, time.Since(start).Seconds())

	if !rep.Healthy() {
		return fmt.Errorf("search completed with %d faulted evaluations, %d dropped sinks",
			rep.Faulted, len(rep.SinkFailures))
	}
	return nil
}

// openOutSink prepares the per-evaluation record export: the file is
// rewritten from the resumed prefix (healing any torn tail of the
// interrupted run) and the returned sink appends the remaining live
// evaluations, so the finished file is byte-identical to an uninterrupted
// run's. Streaming appends run through the retry/fault-injection stack; the
// atomic prefix rewrite does not (it already fails safe: temp file +
// rename).
func openOutSink(path string, prefix []search.EvalRecord, pol retry.Policy, failures *faultinject.WriteFailures) (search.Sink, *os.File, error) {
	f, err := ckptio.RewriteThenAppend(path, func(w io.Writer) error {
		sink := search.NewJSONLSink(w)
		for _, rec := range prefix {
			if err := sink.Consume(rec); err != nil {
				return err
			}
		}
		return sink.Flush()
	})
	if err != nil {
		return nil, nil, err
	}
	return search.NewJSONLSink(ckptio.HardenWriter(f, pol, failures)), f, nil
}

// openCheckpointSink prepares the checkpoint: header plus the verified
// resumed prefix are rewritten, and the returned sink appends every further
// completed evaluation as it is emitted — through the same
// retry/fault-injection stack as the record export.
func openCheckpointSink(path, sig string, prefix []search.EvalRecord, pol retry.Policy, failures *faultinject.WriteFailures) (search.Sink, *os.File, error) {
	f, err := ckptio.RewriteThenAppend(path, func(w io.Writer) error {
		if err := registry.WriteCheckpointHeader(w, sig); err != nil {
			return err
		}
		sink := search.NewJSONLSink(w)
		for _, rec := range prefix {
			if err := sink.Consume(rec); err != nil {
				return err
			}
		}
		return sink.Flush()
	})
	if err != nil {
		return nil, nil, err
	}
	return search.NewJSONLSink(ckptio.HardenWriter(f, pol, failures)), f, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseSizes(s string) ([]registry.Size, error) {
	var sizes []registry.Size
	for _, part := range splitList(s) {
		nt := strings.SplitN(part, ":", 2)
		if len(nt) != 2 {
			return nil, fmt.Errorf("bad size %q (want n:t, e.g. 24:3)", part)
		}
		n, err := strconv.Atoi(nt[0])
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %v", part, err)
		}
		t, err := strconv.Atoi(nt[1])
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %v", part, err)
		}
		sizes = append(sizes, registry.Size{N: n, T: t})
	}
	return sizes, nil
}
