package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"asyncagree/internal/search"
)

// smokeArgs is the small search the CLI tests run: two adversaries with one
// knob each under the adversary-driven scheduler, short trials.
func smokeArgs(extra ...string) []string {
	return append([]string{
		"-alg", "core", "-advs", "splitvote,silence", "-scheds", "adversary",
		"-sizes", "12:1", "-trials", "2", "-max-windows", "40",
		"-refine", "1", "-gens", "1", "-pop", "3", "-seed", "5",
	}, extra...)
}

func TestSearchDeterministicOutput(t *testing.T) {
	var out1, out2 strings.Builder
	if err := run(smokeArgs(), &out1, nil); err != nil {
		t.Fatal(err)
	}
	if err := run(smokeArgs(), &out2, nil); err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Fatalf("two identical searches produced different output:\n%s\n---\n%s", out1.String(), out2.String())
	}
	if !strings.Contains(out1.String(), "/adversary[") {
		t.Fatalf("frontier missing knobbed candidates:\n%s", out1.String())
	}
}

func TestSearchSerialMatchesParallelOutput(t *testing.T) {
	var par, ser strings.Builder
	if err := run(smokeArgs(), &par, nil); err != nil {
		t.Fatal(err)
	}
	if err := run(smokeArgs("-serial"), &ser, nil); err != nil {
		t.Fatal(err)
	}
	if par.String() != ser.String() {
		t.Fatalf("parallel output diverged from serial:\n%s\n---\n%s", par.String(), ser.String())
	}
}

func TestSearchListShowsKnobs(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out, nil); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"core", "splitvote", "knob capdelta", "knob resetpct", "knob offset"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("inventory missing %q:\n%s", want, out.String())
		}
	}
}

func TestSearchRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-alg", "nope"},
		{"-advs", "nope"},
		{"-scheds", "nope"},
		{"-input", "nope"},
		{"-sizes", "12"},
		{"-sizes", "a:b"},
		{"-trials", "-1"},
		{"-budget", "-1"},
		{"-shard-workers", "0"},
		{"-resume"}, // no -out/-checkpoint to resume from
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out, nil); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

// TestSearchResumeIdentical is the driver's central guarantee surfaced at
// the CLI: a search interrupted partway (the -interrupt-after hook, the
// same clean-stop path SIGINT takes) and then resumed produces a frontier
// table, a JSONL export, and a checkpoint byte-identical to an
// uninterrupted run's.
func TestSearchResumeIdentical(t *testing.T) {
	dir := t.TempDir()
	cleanOut := filepath.Join(dir, "clean.jsonl")
	resOut := filepath.Join(dir, "resumed.jsonl")

	var cleanTable strings.Builder
	if err := run(smokeArgs("-out", cleanOut), &cleanTable, nil); err != nil {
		t.Fatal(err)
	}

	var interruptedTable strings.Builder
	err := run(smokeArgs("-out", resOut, "-interrupt-after", "4"), &interruptedTable, nil)
	if !errors.Is(err, search.ErrInterrupted) {
		t.Fatalf("interrupted run returned %v, want ErrInterrupted", err)
	}
	if interruptedTable.Len() != 0 {
		t.Fatalf("interrupted run printed a table:\n%s", interruptedTable.String())
	}
	ckpt, err := os.ReadFile(resOut + ".ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(ckpt), "\n"); got != 1+4 {
		t.Fatalf("checkpoint has %d lines, want header + 4 records:\n%s", got, ckpt)
	}

	var resumedTable strings.Builder
	if err := run(smokeArgs("-out", resOut, "-resume"), &resumedTable, nil); err != nil {
		t.Fatal(err)
	}

	if cleanTable.String() != resumedTable.String() {
		t.Fatalf("resumed table diverged from clean run:\n%s\n---\n%s",
			cleanTable.String(), resumedTable.String())
	}
	clean, err := os.ReadFile(cleanOut)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := os.ReadFile(resOut)
	if err != nil {
		t.Fatal(err)
	}
	if string(clean) != string(resumed) {
		t.Fatalf("resumed JSONL diverged from clean run:\n%s\n---\n%s", clean, resumed)
	}
	cleanCkpt, err := os.ReadFile(cleanOut + ".ckpt")
	if err != nil {
		t.Fatal(err)
	}
	resumedCkpt, err := os.ReadFile(resOut + ".ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if string(cleanCkpt) != string(resumedCkpt) {
		t.Fatal("resumed checkpoint diverged from clean run")
	}
}

// TestSearchResumeRejectsChangedOptions pins the misuse guard: a checkpoint
// recorded against one search signature cannot silently seed a different
// schedule.
func TestSearchResumeRejectsChangedOptions(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "r.jsonl")
	err := run(smokeArgs("-out", out, "-interrupt-after", "3"), &strings.Builder{}, nil)
	if !errors.Is(err, search.ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	// Same -out/-checkpoint, different mutation seed → different signature.
	args := append([]string{
		"-alg", "core", "-advs", "splitvote,silence", "-scheds", "adversary",
		"-sizes", "12:1", "-trials", "2", "-max-windows", "40",
		"-refine", "1", "-gens", "1", "-pop", "3", "-seed", "6",
	}, "-out", out, "-resume")
	if err := run(args, &strings.Builder{}, nil); err == nil ||
		!strings.Contains(err.Error(), "grid") {
		t.Fatalf("changed options accepted on resume: %v", err)
	}
}

// TestSearchTornCheckpointTail simulates a hard kill mid-write: a torn
// final checkpoint line is discarded and the resume still completes
// identically.
func TestSearchTornCheckpointTail(t *testing.T) {
	dir := t.TempDir()
	cleanOut := filepath.Join(dir, "clean.jsonl")
	resOut := filepath.Join(dir, "torn.jsonl")
	var cleanTable strings.Builder
	if err := run(smokeArgs("-out", cleanOut), &cleanTable, nil); err != nil {
		t.Fatal(err)
	}
	if err := run(smokeArgs("-out", resOut, "-interrupt-after", "4"), &strings.Builder{}, nil); !errors.Is(err, search.ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	f, err := os.OpenFile(resOut+".ckpt", os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"index":99,"sta`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var resumedTable strings.Builder
	if err := run(smokeArgs("-out", resOut, "-resume"), &resumedTable, nil); err != nil {
		t.Fatal(err)
	}
	if cleanTable.String() != resumedTable.String() {
		t.Fatal("resume after torn checkpoint tail diverged from clean run")
	}
	clean, _ := os.ReadFile(cleanOut)
	resumed, _ := os.ReadFile(resOut)
	if string(clean) != string(resumed) {
		t.Fatal("resumed JSONL after torn tail diverged from clean run")
	}
}

// TestSearchFaultInjectionExitsNonZero drives the chaos path end to end:
// injected evaluation faults surface in the degradation report and fail the
// invocation, while the frontier is still printed.
func TestSearchFaultInjectionExitsNonZero(t *testing.T) {
	var out strings.Builder
	err := run(smokeArgs("-inject-panics", "0", "-inject-stalls", "1", "-inject-stall-window", "1"), &out, nil)
	if err == nil || !strings.Contains(err.Error(), "faulted") {
		t.Fatalf("faulted search exited cleanly: %v", err)
	}
	if !strings.Contains(out.String(), "faulted-evaluations 2") {
		t.Fatalf("degradation report missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "mean-stall") {
		t.Fatalf("frontier table missing from degraded run:\n%s", out.String())
	}
}
