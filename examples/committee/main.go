// Committee: the introduction's separation, run live. The Kapron et
// al.-style committee algorithm finishes fast and survives *non-adaptive*
// Byzantine faults, but an *adaptive* adversary simply waits until the
// final committee is known and silences it — after which nobody can decide.
// Bracha's algorithm (slow, optimal resilience) is unbothered by the same
// strike because there is no small committee to decapitate.
package main

import (
	"fmt"
	"log"

	"asyncagree"
	"asyncagree/internal/bracha"
	"asyncagree/internal/committee"
)

func main() {
	const n = 27

	// Fault-free committee run.
	runCommittee("fault-free", nil, false)

	// Non-adaptive: 3 silent Byzantine processors fixed before the run.
	runCommittee("non-adaptive (3 silent)", []asyncagree.ProcID{4, 13, 22}, false)

	// Adaptive: wait for the final committee, then silence 3 of it.
	runCommittee("adaptive strike on final committee", nil, true)
}

func runCommittee(label string, preCorrupt []asyncagree.ProcID, adaptive bool) {
	const n = 27
	cfg := asyncagree.Config{
		Algorithm: asyncagree.AlgorithmCommittee,
		N:         n, T: 3,
		Inputs: asyncagree.UnanimousInputs(n, 1),
		Seed:   5,
	}
	sys, err := asyncagree.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range preCorrupt {
		if err := sys.Corrupt(v, bracha.NewSilent(v)); err != nil {
			log.Fatal(err)
		}
	}
	adv, err := asyncagree.NewAdversary("full", cfg)
	if err != nil {
		log.Fatal(err)
	}
	struck := false
	for w := 0; w < 4000 && !sys.AllDecided(); w++ {
		if err := sys.ApplyWindowWith(adv); err != nil {
			log.Fatal(err)
		}
		if !adaptive || struck {
			continue
		}
		p0, ok := sys.Proc(0).(*committee.Proc)
		if !ok {
			log.Fatal("unexpected process type")
		}
		final := p0.FinalCommittee()
		if final == nil {
			continue
		}
		fmt.Printf("  [%s] final committee known at window %d: %v — striking now\n", label, w, final)
		for i := 0; i < 3 && i < len(final); i++ {
			if err := sys.Corrupt(final[i], bracha.NewSilent(final[i])); err != nil {
				log.Fatal(err)
			}
		}
		struck = true
	}
	res := sys.Result()
	fmt.Printf("%-38s decided=%d/%d windows=%d agreement=%v\n\n",
		label+":", sys.DecidedCount(), n, res.Windows, res.Agreement)
}
