// Laggard: delivery scheduling as a first-class scenario axis. The same
// algorithm under the same adversary behaves very differently depending on
// *which* ≥ n−t senders each acceptable window admits — the knob the
// Lewko–Lewko lower bound turns. This example runs the core algorithm under
// the benign adversary three times, swapping only the delivery scheduler:
//
//   - "full":    every message delivered (the fast path);
//   - "laggard": a rotating t-subset is starved for an epoch of windows,
//     then the laggard set rotates — bounded unfairness;
//   - "seeded":  an independent random (n−t)-subset per receiver per
//     window — chaos delivery, reproducible from the seed.
//
// Every discipline is a legal Definition 1 schedule, so Theorem 4's safety
// guarantee is untouched; only the decision-round curve moves.
package main

import (
	"fmt"
	"log"

	"asyncagree"
)

func main() {
	const n, t = 24, 3 // t < n/6

	for _, schedName := range []string{"full", "laggard", "seeded"} {
		cfg := asyncagree.Config{
			Algorithm: asyncagree.AlgorithmCore,
			N:         n,
			T:         t,
			Inputs:    asyncagree.SplitInputs(n),
			Seed:      7,
		}
		sys, err := asyncagree.New(cfg)
		if err != nil {
			log.Fatal(err)
		}

		// The adversary contributes no resets here; the scheduler alone
		// decides the delivery discipline. Swap "full" for "storm" to
		// compose a reset storm with laggard delivery.
		adv, err := asyncagree.NewAdversary("full", cfg)
		if err != nil {
			log.Fatal(err)
		}
		sch, err := asyncagree.NewScheduler(schedName, cfg)
		if err != nil {
			log.Fatal(err)
		}

		res, err := sys.RunWindows(asyncagree.Schedule(adv, sch), 200000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s windows=%-4d first-decision=%-4d all-decided=%-5v agreement=%v validity=%v\n",
			schedName, res.Windows, res.FirstDecision, res.AllDecided, res.Agreement, res.Validity)
		if !res.Agreement || !res.Validity {
			log.Fatal("safety violated?! (this is a bug, not a property of the discipline)")
		}
	}
	fmt.Println()
	fmt.Println("Same algorithm, same adversary, three delivery disciplines:")
	fmt.Println("the decision-round curve moves, agreement and validity never do.")
}
