// Resetstorm: the headline capability of the paper's Section 3 algorithm —
// surviving a *strongly adaptive adversary* that erases the memory of t
// processors every single acceptable window. Ben-Or and Bracha were not
// designed for this; the core algorithm's reset-detection and rejoin
// machinery is what Theorem 4 certifies.
//
// This example counts how many resets each processor absorbs while the
// protocol still reaches a safe unanimous decision.
package main

import (
	"fmt"
	"log"

	"asyncagree"
)

func main() {
	const n, t = 30, 4 // t < n/6

	cfg := asyncagree.Config{
		Algorithm: asyncagree.AlgorithmCore,
		N:         n,
		T:         t,
		Inputs:    asyncagree.SplitInputs(n),
		Seed:      2024,
	}
	sys, err := asyncagree.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	resets := 0
	decisions := 0
	sys.OnEvent = func(ev asyncagree.Event) {
		switch ev.Kind {
		case asyncagree.EvReset:
			resets++
		case asyncagree.EvDecide:
			decisions++
			fmt.Printf("window %3d: processor %2d decided %d (after %d total resets so far)\n",
				ev.Window, ev.Proc, ev.Value, resets)
		}
	}

	// The storm: reset a rotating set of t processors at the end of every
	// window, forever. Resolved by name from the scenario registry, which
	// hands back fresh rotation state for this run.
	adv, err := asyncagree.NewAdversary("storm", cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.RunWindows(adv, 200000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Printf("windows:    %d\n", res.Windows)
	fmt.Printf("resets:     %d (every processor hit ~%d times)\n", resets, resets/n)
	fmt.Printf("decisions:  %d/%d, agreement=%v validity=%v\n", decisions, n, res.Agreement, res.Validity)
	if !res.Agreement || !res.Validity || !res.AllDecided {
		log.Fatal("Theorem 4 violated?! (this is a bug, not a property of the algorithm)")
	}
	fmt.Println("Theorem 4 in action: measure-one correctness and termination under adaptive resets.")
}
