// Crashchains: Section 5 of the paper, live. Ben-Or's protocol is
// "forgetful" and "fully communicative" (Definitions 15 and 16), so
// Theorem 17 applies: against a classical crash-model adversary, its
// running time — measured as the longest message chain before a decision —
// is exponential in n.
//
// The adversary needs no crashes at all here: pure scheduling (showing each
// processor a near-even split of the round's reports) already forces fresh
// coin flips round after round. This example sweeps n and prints the
// measured chain lengths.
package main

import (
	"fmt"
	"log"

	"asyncagree"
	"asyncagree/internal/stats"
)

func main() {
	fmt.Println("Ben-Or vs split-vote crash-model adversary (split inputs):")
	fmt.Println()
	fmt.Println("n    t   mean-chain   median   max")

	var xs, ys []float64
	for _, n := range []int{9, 13, 17, 21} {
		t := n / 4
		var chains []int
		for seed := uint64(1); seed <= 12; seed++ {
			cfg := asyncagree.Config{
				Algorithm: asyncagree.AlgorithmBenOr,
				N:         n, T: t,
				Inputs: asyncagree.SplitInputs(n),
				Seed:   seed,
			}
			sys, err := asyncagree.New(cfg)
			if err != nil {
				log.Fatal(err)
			}
			// The registry tunes the split-vote adversary to Ben-Or's
			// vote classifier and floor(n/2) cap, fresh state per run.
			adv, err := asyncagree.NewAdversary("splitvote", cfg)
			if err != nil {
				log.Fatal(err)
			}
			res, err := sys.RunWindows(adv, 500000)
			if err != nil {
				log.Fatal(err)
			}
			if !res.Agreement || !res.Validity {
				log.Fatal("safety violated — impossible for honest Ben-Or")
			}
			chains = append(chains, res.MaxChainDepth)
		}
		sum := stats.SummarizeInts(chains)
		fmt.Printf("%-4d %-3d %-12.1f %-8.1f %.0f\n", n, t, sum.Mean, sum.Median, sum.Max)
		xs = append(xs, float64(n))
		ys = append(ys, sum.Mean)
	}

	if fit, ok := stats.FitExponential(xs, ys); ok {
		fmt.Printf("\nfit: mean-chain ~ %.3g * exp(%.4f * n)   (R^2 = %.3f)\n", fit.C, fit.Alpha, fit.R2)
	}
	fmt.Println("\nTheorem 17: for any forgetful, fully communicative algorithm this growth")
	fmt.Println("is unavoidable — C*e^{alpha*n} message-chain length with probability >= 1/2.")
}
