// Exptime: the other side of the paper — against a full-information
// adversary, agreement with perfect safety is *exponentially slow*
// (Section 3's closing argument, made inevitable by Theorem 5).
//
// The split-vote adversary shows every processor an approximate split of
// the round's votes, forcing everyone to flip fresh coins; it loses only
// when the coins come out so lopsided that hiding the majority no longer
// fits within the fault budget t. This example sweeps n at fixed t/n and
// prints the measured mean windows-to-decision with an exponential fit.
package main

import (
	"fmt"
	"log"

	"asyncagree"
	"asyncagree/internal/lowerbound"
)

func main() {
	// Small demo of the mechanism at one size first.
	cfg := asyncagree.Config{
		Algorithm: asyncagree.AlgorithmCore,
		N:         24, T: 3,
		Inputs: asyncagree.SplitInputs(24),
		Seed:   1,
	}
	adv, err := asyncagree.NewAdversary("splitvote", cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := asyncagree.Run(cfg, adv, 1000000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n=24 t=3 split inputs vs split-vote adversary: %d windows to first decision\n\n",
		res.FirstDecision)

	// The sweep: mean stall vs n (deterministic given seeds).
	ns := []int{8, 12, 16, 20, 24, 28}
	series, err := lowerbound.StallSeries(ns, 1.0/8, 15, 2000000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("n    t   mean-windows   median   max")
	for _, p := range series {
		fmt.Printf("%-4d %-3d %-14.1f %-8.1f %.0f\n",
			p.N, p.T, p.Summary.Mean, p.Summary.Median, p.Summary.Max)
	}
	if fit, ok := lowerbound.FitGrowth(series); ok {
		fmt.Printf("\nexponential fit: mean ~ %.3g * exp(%.4f * n)   (R^2 = %.3f)\n", fit.C, fit.Alpha, fit.R2)
		fmt.Println("Theorem 5 says this shape is unavoidable for any algorithm with")
		fmt.Println("measure-one correctness and termination against the strongly adaptive adversary.")
	}
}
