// Quickstart: run the paper's reset-tolerant agreement algorithm (Section 3)
// on 24 processors with split inputs under a benign schedule, then under a
// chaotic adversary with resets, and print what happened.
package main

import (
	"fmt"
	"log"

	"asyncagree"
)

func main() {
	const n, t = 24, 3 // t < n/6, the Theorem 4 regime

	cfg := asyncagree.Config{
		Algorithm: asyncagree.AlgorithmCore,
		N:         n,
		T:         t,
		Inputs:    asyncagree.SplitInputs(n),
		Seed:      42,
	}

	// Adversaries are looked up by name in the shared scenario registry
	// ("full", "subsets", "random", "storm", "silence", "splitvote");
	// NewAdversary returns fresh per-run state tuned to cfg's algorithm.

	// 1. Benign run: every message delivered, no faults.
	res, err := runUnder(cfg, "full", 100000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benign schedule:   decided %v in %d windows (agreement=%v validity=%v)\n",
		res.Decision, res.Windows, res.Agreement, res.Validity)

	// 2. Chaos run: random (n-t)-subset deliveries, random memory resets.
	res, err = runUnder(cfg, "random", 100000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chaotic adversary: decided %v in %d windows (agreement=%v validity=%v)\n",
		res.Decision, res.Windows, res.Agreement, res.Validity)

	// 3. Unanimous inputs decide in the very first acceptable window.
	cfg.Inputs = asyncagree.UnanimousInputs(n, 1)
	res, err = runUnder(cfg, "storm", 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unanimous inputs:  decided %v with first decision in window %d despite a reset storm\n",
		res.Decision, res.FirstDecision)
}

func runUnder(cfg asyncagree.Config, adversary string, maxWindows int) (asyncagree.RunResult, error) {
	adv, err := asyncagree.NewAdversary(adversary, cfg)
	if err != nil {
		return asyncagree.RunResult{}, err
	}
	return asyncagree.Run(cfg, adv, maxWindows)
}
