module asyncagree

go 1.24
